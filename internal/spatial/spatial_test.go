package spatial

import (
	"testing"
	"testing/quick"

	"gonamd/internal/vec"
	"gonamd/internal/xrand"
)

func TestNewGridApoA1Shape(t *testing.T) {
	// The paper's ApoA-I system: 12 Å cutoff, 7×7×5 = 245 patches.
	g, err := NewGrid(vec.New(108.86, 108.86, 77.76), 12.0)
	if err != nil {
		t.Fatal(err)
	}
	if g.Dim != [3]int{9, 9, 6} {
		// 108.86/12 = 9.07 → 9. The paper's 7×7×5 grid uses patch size
		// slightly larger than cutoff with margin; see molgen for the
		// boxes we use. This test just pins the floor rule.
		t.Errorf("Dim = %v, want [9 9 6] for this box", g.Dim)
	}
	for c := 0; c < 3; c++ {
		if g.Size.Comp(c) < 12.0 {
			t.Errorf("patch size %v below cutoff", g.Size)
		}
	}
}

func TestGridIndexRoundTrip(t *testing.T) {
	g, err := NewGrid(vec.New(84, 84, 60), 12.0)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumPatches() != 7*7*5 {
		t.Fatalf("NumPatches = %d, want 245", g.NumPatches())
	}
	for id := 0; id < g.NumPatches(); id++ {
		x, y, z := g.Coords(id)
		if g.Index(x, y, z) != id {
			t.Fatalf("round trip failed for %d -> (%d,%d,%d)", id, x, y, z)
		}
	}
}

func TestPatchOf(t *testing.T) {
	g, _ := NewGrid(vec.New(84, 84, 60), 12.0)
	if got := g.PatchOf(vec.New(0.1, 0.1, 0.1)); got != 0 {
		t.Errorf("PatchOf origin = %d, want 0", got)
	}
	// Wrapped position.
	if got := g.PatchOf(vec.New(-0.1, 0.1, 0.1)); got != g.Index(6, 0, 0) {
		t.Errorf("PatchOf wrapped = %d, want %d", got, g.Index(6, 0, 0))
	}
	// Point exactly at box edge must not index out of range.
	if got := g.PatchOf(vec.New(84, 84, 60)); got != 0 {
		t.Errorf("PatchOf box corner = %d, want 0 (wraps)", got)
	}
	// Every patch center maps back to its own patch.
	for id := 0; id < g.NumPatches(); id++ {
		if got := g.PatchOf(g.Center(id)); got != id {
			t.Fatalf("center of patch %d binned to %d", id, got)
		}
	}
}

func TestNeighbors26(t *testing.T) {
	g, _ := NewGrid(vec.New(84, 84, 60), 12.0) // 7×7×5: all dims > 2
	for _, id := range []int{0, 100, g.NumPatches() - 1} {
		nb := g.Neighbors(id)
		if len(nb) != 26 {
			t.Errorf("patch %d has %d neighbors, want 26", id, len(nb))
		}
		for _, n := range nb {
			if n == id {
				t.Errorf("patch %d lists itself as neighbor", id)
			}
		}
	}
}

func TestNeighborsSmallGridDedup(t *testing.T) {
	// 2×2×2 grid: all 7 other patches are neighbors (each offset wraps).
	g, _ := NewGrid(vec.New(25, 25, 25), 12.0)
	if g.NumPatches() != 8 {
		t.Fatalf("NumPatches = %d, want 8", g.NumPatches())
	}
	nb := g.Neighbors(0)
	if len(nb) != 7 {
		t.Errorf("2×2×2 neighbors = %d, want 7 (deduplicated)", len(nb))
	}
	// 1×1×1 grid: no neighbors at all.
	g1, _ := NewGrid(vec.New(10, 10, 10), 12.0)
	if g1.NumPatches() != 1 {
		t.Fatalf("NumPatches = %d, want 1", g1.NumPatches())
	}
	if nb := g1.Neighbors(0); len(nb) != 0 {
		t.Errorf("single patch has %d neighbors, want 0", len(nb))
	}
}

func TestUpstreamNeighbors(t *testing.T) {
	g, _ := NewGrid(vec.New(84, 84, 60), 12.0)
	up := g.UpstreamNeighbors(g.Index(3, 3, 2))
	if len(up) != 7 {
		t.Errorf("upstream count = %d, want 7", len(up))
	}
	want := map[int]bool{}
	for dz := 0; dz <= 1; dz++ {
		for dy := 0; dy <= 1; dy++ {
			for dx := 0; dx <= 1; dx++ {
				if dx+dy+dz == 0 {
					continue
				}
				want[g.Index(3+dx, 3+dy, 2+dz)] = true
			}
		}
	}
	for _, u := range up {
		if !want[u] {
			t.Errorf("unexpected upstream neighbor %d", u)
		}
	}
}

func TestNeighborPairsCount(t *testing.T) {
	// For a periodic grid with all dims ≥ 3, each patch pairs with 26
	// neighbors; each pair counted once → 13 × npatches pairs. Combined
	// with one self compute per patch this gives the paper's "14 times
	// the number of cubes" compute objects.
	g, _ := NewGrid(vec.New(84, 84, 60), 12.0)
	pairs := g.NeighborPairs()
	want := 13 * g.NumPatches()
	if len(pairs) != want {
		t.Errorf("NeighborPairs = %d, want %d", len(pairs), want)
	}
	seen := make(map[[2]int]bool)
	for _, pr := range pairs {
		if pr[0] >= pr[1] {
			t.Fatalf("pair %v not ordered", pr)
		}
		if seen[pr] {
			t.Fatalf("pair %v duplicated", pr)
		}
		seen[pr] = true
	}
}

func TestPairProximity(t *testing.T) {
	g, _ := NewGrid(vec.New(84, 84, 60), 12.0)
	a := g.Index(2, 2, 2)
	if got := g.PairProximity(a, g.Index(3, 2, 2)); got != 1 {
		t.Errorf("face proximity = %d, want 1", got)
	}
	if got := g.PairProximity(a, g.Index(3, 3, 2)); got != 2 {
		t.Errorf("edge proximity = %d, want 2", got)
	}
	if got := g.PairProximity(a, g.Index(3, 3, 3)); got != 3 {
		t.Errorf("corner proximity = %d, want 3", got)
	}
	// Through the periodic boundary.
	if got := g.PairProximity(g.Index(0, 0, 0), g.Index(6, 0, 0)); got != 1 {
		t.Errorf("wrapped face proximity = %d, want 1", got)
	}
}

func TestMinPatch(t *testing.T) {
	g, _ := NewGrid(vec.New(84, 84, 60), 12.0)
	ids := []int{g.Index(3, 4, 2), g.Index(4, 3, 2), g.Index(4, 4, 1)}
	want := g.Index(3, 3, 1)
	if got := g.MinPatch(ids); got != want {
		t.Errorf("MinPatch = %d, want %d", got, want)
	}
	if got := g.MinPatch([]int{5}); got != 5 {
		t.Errorf("MinPatch single = %d, want 5", got)
	}
}

func TestBinCoversAllAtoms(t *testing.T) {
	g, _ := NewGrid(vec.New(84, 84, 60), 12.0)
	rng := xrand.New(8)
	pos := make([]vec.V3, 5000)
	for i := range pos {
		pos[i] = vec.New(rng.Range(-50, 150), rng.Range(-50, 150), rng.Range(-50, 150))
	}
	bins := g.Bin(pos)
	total := 0
	for id, b := range bins {
		total += len(b)
		for _, ai := range b {
			if g.PatchOf(pos[ai]) != id {
				t.Fatalf("atom %d binned to %d but PatchOf says %d", ai, id, g.PatchOf(pos[ai]))
			}
		}
	}
	if total != len(pos) {
		t.Errorf("binned %d of %d atoms", total, len(pos))
	}
}

func TestRCBRoundRobinWhenMorePEs(t *testing.T) {
	centers := []vec.V3{{X: 1}, {X: 2}, {X: 3}}
	weights := []float64{1, 1, 1}
	got := RCB(centers, weights, 8)
	for i, pe := range got {
		if pe != i {
			t.Errorf("RCB round-robin: item %d on PE %d, want %d", i, pe, i)
		}
	}
}

func TestRCBBalance(t *testing.T) {
	// A uniform 10×10×1 grid of unit-weight items on 4 PEs should give
	// each PE 25 items.
	var centers []vec.V3
	var weights []float64
	for y := 0; y < 10; y++ {
		for x := 0; x < 10; x++ {
			centers = append(centers, vec.New(float64(x), float64(y), 0))
			weights = append(weights, 1)
		}
	}
	got := RCB(centers, weights, 4)
	count := map[int]int{}
	for _, pe := range got {
		count[pe]++
	}
	if len(count) != 4 {
		t.Fatalf("RCB used %d PEs, want 4", len(count))
	}
	for pe, c := range count {
		if c != 25 {
			t.Errorf("PE %d got %d items, want 25", pe, c)
		}
	}
}

func TestRCBLocality(t *testing.T) {
	// Items assigned to the same PE should be spatially contiguous:
	// with 2 PEs and a line of items, the split must be by position.
	var centers []vec.V3
	var weights []float64
	for x := 0; x < 10; x++ {
		centers = append(centers, vec.New(float64(x), 0, 0))
		weights = append(weights, 1)
	}
	got := RCB(centers, weights, 2)
	for i := 0; i < 5; i++ {
		if got[i] != got[0] {
			t.Errorf("left half split: item %d on PE %d", i, got[i])
		}
	}
	for i := 5; i < 10; i++ {
		if got[i] != got[5] {
			t.Errorf("right half split: item %d on PE %d", i, got[i])
		}
	}
	if got[0] == got[5] {
		t.Error("RCB assigned everything to one PE")
	}
}

func TestRCBWeighted(t *testing.T) {
	// One very heavy item and nine light ones on 2 PEs: the heavy item
	// should end up roughly alone.
	centers := make([]vec.V3, 10)
	weights := make([]float64, 10)
	for i := range centers {
		centers[i] = vec.New(float64(i), 0, 0)
		weights[i] = 1
	}
	weights[0] = 100
	got := RCB(centers, weights, 2)
	heavyPE := got[0]
	heavyCount := 0
	for _, pe := range got {
		if pe == heavyPE {
			heavyCount++
		}
	}
	if heavyCount > 3 {
		t.Errorf("heavy item shares its PE with %d items", heavyCount-1)
	}
}

// Property: RCB always uses valid PE ids and, when there are at least as
// many items as PEs, leaves no PE empty.
func TestRCBProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 4 + rng.Intn(60)
		npe := 1 + rng.Intn(16)
		centers := make([]vec.V3, n)
		weights := make([]float64, n)
		for i := range centers {
			centers[i] = vec.New(rng.Range(0, 100), rng.Range(0, 100), rng.Range(0, 100))
			weights[i] = rng.Range(0.1, 10)
		}
		got := RCB(centers, weights, npe)
		used := map[int]bool{}
		for _, pe := range got {
			if pe < 0 || pe >= npe {
				return false
			}
			used[pe] = true
		}
		if n >= npe && len(used) != npe {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestNewGridErrors(t *testing.T) {
	if _, err := NewGrid(vec.New(10, 10, 10), 0); err == nil {
		t.Error("zero cutoff accepted")
	}
	if _, err := NewGrid(vec.New(-1, 10, 10), 12); err == nil {
		t.Error("negative box accepted")
	}
}

func TestNeighbors2(t *testing.T) {
	g, _ := NewGrid(vec.New(84, 84, 84), 12.0) // 7×7×7
	n2 := g.Neighbors2(g.Index(3, 3, 3))
	if len(n2) != 124 {
		t.Errorf("Neighbors2 = %d, want 124 (5³-1)", len(n2))
	}
	// Every 1-neighbor is also a 2-neighbor.
	set := map[int]bool{}
	for _, n := range n2 {
		set[n] = true
	}
	for _, n := range g.Neighbors(g.Index(3, 3, 3)) {
		if !set[n] {
			t.Errorf("1-neighbor %d missing from Neighbors2", n)
		}
	}
	// Small grid deduplicates.
	gs, _ := NewGrid(vec.New(36, 36, 36), 12.0) // 3×3×3
	if n := gs.Neighbors2(0); len(n) != 26 {
		t.Errorf("3×3×3 Neighbors2 = %d, want 26 (whole grid)", len(n))
	}
}

func TestBaseOfWrap(t *testing.T) {
	g, _ := NewGrid(vec.New(84, 84, 60), 12.0) // 7×7×5
	// Pair wrapping in x: patches (6,0,0) and (0,0,0) are face neighbors
	// through the boundary; base must be (6,0,0) (the one whose +1 offset
	// reaches the other).
	a, b := g.Index(6, 0, 0), g.Index(0, 0, 0)
	if base := g.BaseOf([]int{a, b}); base != a {
		t.Errorf("wrapped pair base = %d, want %d", base, a)
	}
	// Mixed-sign offset pair: (2,3,1) and (3,2,1) → base (2,2,1).
	p, q := g.Index(2, 3, 1), g.Index(3, 2, 1)
	if base := g.BaseOf([]int{p, q}); base != g.Index(2, 2, 1) {
		t.Errorf("mixed pair base = %d, want %d", base, g.Index(2, 2, 1))
	}
	// Self.
	if base := g.BaseOf([]int{p}); base != p {
		t.Errorf("single base = %d, want %d", base, p)
	}
}
