package spatial

import (
	"fmt"
	"math"
	"math/bits"

	"gonamd/internal/vec"
)

// Cluster pair lists, the GROMACS-style M×N layout: atoms are packed into
// fixed-size clusters and the Verlet list pairs whole clusters instead of
// atoms, so the force kernel amortizes every per-pair lookup (types,
// charges, exclusion tests, cell walks) over M·N distance checks in a
// tight, branch-predictable loop.
//
// Construction packs atoms column by column: the box is divided into x–y
// columns whose cross-section is sized so ~N atoms span a column-edge of
// height, each column's atoms are sorted by z (ties by index, so builds
// are deterministic), and the resulting slot sequence is padded per
// column to a multiple of lcm(M, N). The same slot sequence is then read
// through two aligned views — i-clusters of M consecutive slots and
// j-clusters of N consecutive slots — and an entry (i, j) is listed when
// the two clusters' axis-aligned bounding boxes come within the list
// distance under the periodic minimum image. Within an entry, mask bits
// are set only for atom pairs themselves within the list distance at
// build time — the same Verlet criterion the atom-pair lists apply — so
// a kernel sweep tests the pair-list candidate count, not the tile
// volume. Every real atom pair within the list distance is covered, and
// covered exactly once: the pair with slots s_i < s_j appears only in
// entry (s_i/M, s_j/N), at mask bit (s_i mod M)·N + (s_j mod N). The
// packed 64-bit interaction mask also encodes Newton's-third-law
// ordering (only s_j > s_i bits are set), padding slots, and exclusions;
// a parallel mask flags modified 1-4 pairs. The skin/2 drift rule
// (DriftGuard) decides list reuse exactly as for the atom-pair lists.

// ClusterPairEntry is one packed cluster pair of a ClusterList: the
// j-cluster index plus the interaction masks. Mask bit a·N+b enables the
// pair (i-slot a, j-slot b); Mod flags the subset evaluated with modified
// 1-4 parameters (Mod ⊆ Mask).
type ClusterPairEntry struct {
	J    int32
	Mask uint64
	Mod  uint64
}

// ClusterList is an immutable cluster pair list over one position
// snapshot. Slot s holds atom Atom[s] (-1 for padding); the i-view groups
// slots in runs of M, the j-view in runs of N, and per-column padding to
// lcm(M, N) keeps both views aligned so a cluster never straddles a
// column boundary.
type ClusterList struct {
	M, N int
	Box  vec.V3

	Atom   []int32 // slot → atom index, -1 for padding
	SlotOf []int32 // atom index → slot

	// Entries of i-cluster ic are Entries[EntryOff[ic]:EntryOff[ic+1]],
	// sorted by ascending J.
	EntryOff []int32
	Entries  []ClusterPairEntry

	// IMin/IMax are the i-cluster bounding boxes over wrapped positions at
	// build time (IMin > IMax marks an empty, all-padding cluster).
	IMin, IMax []vec.V3
}

// Slots returns the padded slot count (a multiple of lcm(M, N)).
func (l *ClusterList) Slots() int { return len(l.Atom) }

// NumI returns the number of i-clusters (Slots/M).
func (l *ClusterList) NumI() int { return len(l.Atom) / l.M }

// NumJ returns the number of j-clusters (Slots/N).
func (l *ClusterList) NumJ() int { return len(l.Atom) / l.N }

// CenterI returns the center of i-cluster ic's bounding box (the box
// origin for empty clusters), used to map clusters onto spatial cells for
// task decomposition and load balancing.
func (l *ClusterList) CenterI(ic int) vec.V3 {
	lo, hi := l.IMin[ic], l.IMax[ic]
	if lo.X > hi.X {
		return vec.Zero
	}
	return vec.New((lo.X+hi.X)/2, (lo.Y+hi.Y)/2, (lo.Z+hi.Z)/2)
}

// NumPairs returns the number of enabled (mask-set) slot pairs across all
// entries — the pair count a kernel sweep will test against the cutoff.
func (l *ClusterList) NumPairs() int {
	n := 0
	for i := range l.Entries {
		n += popcount(l.Entries[i].Mask)
	}
	return n
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// ClusterBuilder constructs ClusterLists with storage reused across
// builds, so steady-state rebuilds stop allocating once capacities reach
// their high-water marks. Build is a pure function of the positions and
// the exclusion enumeration: identical inputs produce an identical list,
// which makes rebuild-vs-cached-replay force evaluation bitwise equal.
type ClusterBuilder struct {
	M, N, L  int // cluster sizes and lcm(M, N)
	Box      vec.V3
	ListDist float64 // cutoff + skin

	list ClusterList

	// Column grid (recomputed per build from the atom density).
	nx, ny     int
	colW, colH float64

	// Scratch, reused across builds.
	colOf      []int32 // atom → column
	colCnt     []int32 // per-column atom count
	colLo      []int32 // per-column slot range start (padded prefix)
	colHi      []int32 // per-column slot range end
	order      []int32 // atoms grouped by column, z-sorted in place
	icCol      []int32 // i-cluster → column
	realI      []uint64
	realJ      []uint64
	jMin       []vec.V3
	jMax       []vec.V3
	cand       []int32   // candidate column scratch, sorted ascending
	sx, sy, sz []float64 // slot → wrapped coordinate (padding slots undefined)
}

// NewClusterBuilder validates the cluster geometry and prepares a
// builder. M and N must be in [1, 8] with M·N ≤ 64 so an interaction mask
// fits one 64-bit word; listDist is cutoff + skin.
func NewClusterBuilder(box vec.V3, m, n int, listDist float64) (*ClusterBuilder, error) {
	if m < 1 || m > 8 || n < 1 || n > 8 {
		return nil, fmt.Errorf("spatial: cluster sizes %dx%d out of range (1..8)", m, n)
	}
	if m*n > 64 {
		return nil, fmt.Errorf("spatial: cluster mask %dx%d exceeds 64 bits", m, n)
	}
	if listDist <= 0 {
		return nil, fmt.Errorf("spatial: cluster list distance %g must be positive", listDist)
	}
	if box.X <= 0 || box.Y <= 0 || box.Z <= 0 {
		return nil, fmt.Errorf("spatial: invalid box %v", box)
	}
	return &ClusterBuilder{M: m, N: n, L: lcm(m, n), Box: box, ListDist: listDist,
		list: ClusterList{M: m, N: n, Box: box}}, nil
}

func lcm(a, b int) int {
	g, x, y := 1, a, b
	for y != 0 {
		x, y = y, x%y
	}
	g = x
	return a / g * b
}

// Build packs the atoms into clusters and lists every cluster pair whose
// bounding boxes come within the list distance. excl, when non-nil,
// enumerates excluded and modified (1-4) atom pairs
// (topology.System.ForEachExcludedPair has the right shape): excluded
// pairs are cleared from the interaction masks, modified pairs flagged in
// the Mod masks. The returned list aliases builder storage and is valid
// until the next Build.
func (b *ClusterBuilder) Build(pos []vec.V3, excl func(fn func(i, j int32, modified bool))) *ClusterList {
	b.packColumns(pos)
	b.buildAABBs(pos)
	b.buildEntries()
	if excl != nil {
		b.applyExclusions(excl)
	}
	return &b.list
}

// packColumns assigns atoms to x–y columns, z-sorts each column, and lays
// out the padded slot sequence.
func (b *ClusterBuilder) packColumns(pos []vec.V3) {
	natoms := len(pos)
	// Column cross-section sized so a cluster of max(M, N) atoms spans
	// roughly a column edge in z at the current density: edge ≈
	// (target/ρ)^(1/3). Degenerate inputs fall back to one column.
	target := b.N
	if b.M > target {
		target = b.M
	}
	vol := b.Box.X * b.Box.Y * b.Box.Z
	edge := b.Box.X + b.Box.Y // larger than any box edge → single column
	if natoms > 0 {
		edge = math.Cbrt(float64(target) * vol / float64(natoms))
	}
	b.nx = int(b.Box.X / edge)
	b.ny = int(b.Box.Y / edge)
	if b.nx < 1 {
		b.nx = 1
	}
	if b.ny < 1 {
		b.ny = 1
	}
	b.colW = b.Box.X / float64(b.nx)
	b.colH = b.Box.Y / float64(b.ny)
	ncol := b.nx * b.ny

	b.colOf = resizeI32(b.colOf, natoms)
	b.colCnt = resizeI32(b.colCnt, ncol)
	b.colLo = resizeI32(b.colLo, ncol)
	b.colHi = resizeI32(b.colHi, ncol)
	for c := range b.colCnt {
		b.colCnt[c] = 0
	}
	for i := 0; i < natoms; i++ {
		w := vec.Wrap(pos[i], b.Box)
		cx := int(w.X / b.colW)
		cy := int(w.Y / b.colH)
		if cx >= b.nx {
			cx = b.nx - 1
		}
		if cy >= b.ny {
			cy = b.ny - 1
		}
		c := int32(cy*b.nx + cx)
		b.colOf[i] = c
		b.colCnt[c]++
	}

	// Padded prefix: each column's slot range is its atom count rounded up
	// to a multiple of lcm(M, N), so clusters never straddle columns.
	slots := 0
	for c := 0; c < ncol; c++ {
		b.colLo[c] = int32(slots)
		padded := (int(b.colCnt[c]) + b.L - 1) / b.L * b.L
		slots += padded
		b.colHi[c] = int32(slots)
	}

	// Group atoms by column (ascending index within each column), then
	// z-sort each column's segment of order in place. order is indexed by
	// slot position, so it spans the padded layout.
	// Reuse colCnt as the per-column write cursor (it is rebuilt next
	// build); the real atom count of column c survives as cnt[c]-colLo[c].
	b.order = resizeI32(b.order, slots)
	cnt := b.colCnt
	for c := 0; c < ncol; c++ {
		cnt[c] = b.colLo[c]
	}
	for i := 0; i < natoms; i++ {
		c := b.colOf[i]
		b.order[cnt[c]] = int32(i)
		cnt[c]++
	}
	for c := 0; c < ncol; c++ {
		lo := int(b.colLo[c])
		hi := int(cnt[c]) // lo + real atom count
		zInsertionSort(b.order[lo:hi], pos)
	}

	// Slot sequence with per-column tail padding.
	l := &b.list
	l.Atom = resizeI32(l.Atom, slots)
	l.SlotOf = resizeI32(l.SlotOf, natoms)
	for c := 0; c < ncol; c++ {
		lo, real, hi := int(b.colLo[c]), int(cnt[c]), int(b.colHi[c])
		for s := lo; s < real; s++ {
			a := b.order[s]
			l.Atom[s] = a
			l.SlotOf[a] = int32(s)
		}
		for s := real; s < hi; s++ {
			l.Atom[s] = -1
		}
	}
}

// zInsertionSort orders atom indices by (z, index). Insertion sort keeps
// rebuilds allocation-free; column segments are small (~N·columnHeight/
// clusterEdge atoms), so the quadratic worst case never dominates.
func zInsertionSort(seg []int32, pos []vec.V3) {
	for i := 1; i < len(seg); i++ {
		a := seg[i]
		za := pos[a].Z
		j := i - 1
		for j >= 0 {
			c := seg[j]
			if pos[c].Z < za || (pos[c].Z == za && c < a) {
				break
			}
			seg[j+1] = c
			j--
		}
		seg[j+1] = a
	}
}

// buildAABBs computes per-cluster bounding boxes over wrapped positions
// and the real-slot bit masks for both views.
func (b *ClusterBuilder) buildAABBs(pos []vec.V3) {
	l := &b.list
	slots := len(l.Atom)
	numI, numJ := slots/b.M, slots/b.N
	l.IMin = resizeV3(l.IMin, numI)
	l.IMax = resizeV3(l.IMax, numI)
	b.jMin = resizeV3(b.jMin, numJ)
	b.jMax = resizeV3(b.jMax, numJ)
	b.realI = resizeU64(b.realI, numI)
	b.realJ = resizeU64(b.realJ, numJ)
	b.icCol = resizeI32(b.icCol, numI)

	// Per-slot wrapped coordinates, kept for entryMask's per-pair
	// distance filter. The i-view pass below visits every slot.
	b.sx = resizeF64(b.sx, slots)
	b.sy = resizeF64(b.sy, slots)
	b.sz = resizeF64(b.sz, slots)

	aabb := func(base, size int) (vec.V3, vec.V3, uint64) {
		lo := vec.New(math.Inf(1), math.Inf(1), math.Inf(1))
		hi := vec.New(math.Inf(-1), math.Inf(-1), math.Inf(-1))
		var real uint64
		for k := 0; k < size; k++ {
			a := l.Atom[base+k]
			if a < 0 {
				continue
			}
			real |= 1 << uint(k)
			w := vec.Wrap(pos[a], b.Box)
			b.sx[base+k], b.sy[base+k], b.sz[base+k] = w.X, w.Y, w.Z
			if w.X < lo.X {
				lo.X = w.X
			}
			if w.Y < lo.Y {
				lo.Y = w.Y
			}
			if w.Z < lo.Z {
				lo.Z = w.Z
			}
			if w.X > hi.X {
				hi.X = w.X
			}
			if w.Y > hi.Y {
				hi.Y = w.Y
			}
			if w.Z > hi.Z {
				hi.Z = w.Z
			}
		}
		if real == 0 {
			lo, hi = vec.New(1, 1, 1), vec.New(0, 0, 0) // inverted: empty
		}
		return lo, hi, real
	}
	for ic := 0; ic < numI; ic++ {
		l.IMin[ic], l.IMax[ic], b.realI[ic] = aabb(ic*b.M, b.M)
	}
	if b.N == b.M {
		copy(b.jMin, l.IMin)
		copy(b.jMax, l.IMax)
		copy(b.realJ, b.realI)
	} else {
		for jc := 0; jc < numJ; jc++ {
			b.jMin[jc], b.jMax[jc], b.realJ[jc] = aabb(jc*b.N, b.N)
		}
	}
	// Column of each i-cluster (columns are L-aligned, so a cluster lies
	// in exactly one).
	col := 0
	for ic := 0; ic < numI; ic++ {
		base := int32(ic * b.M)
		for b.colHi[col] <= base {
			col++
		}
		b.icCol[ic] = int32(col)
	}
}

// wrapGap returns the minimum distance between intervals [alo,ahi] and
// [blo,bhi] on a circle of circumference period (both within [0,
// period)). Zero when they overlap.
func wrapGap(alo, ahi, blo, bhi, period float64) float64 {
	var direct, around float64
	switch {
	case blo > ahi:
		direct = blo - ahi
		around = period - bhi + alo
	case alo > bhi:
		direct = alo - bhi
		around = period - ahi + blo
	default:
		return 0
	}
	g := direct
	if around < g {
		g = around
	}
	if g < 0 {
		g = 0
	}
	return g
}

// buildEntries lists, for every i-cluster, the j-clusters whose bounding
// boxes come within ListDist, visiting candidate columns in ascending
// index so each entry run is sorted by J (entries within a column are
// emitted in ascending cluster order, and slot prefixes grow with column
// index).
func (b *ClusterBuilder) buildEntries() {
	l := &b.list
	numI := len(l.Atom) / b.M
	l.EntryOff = resizeI32(l.EntryOff, numI+1)
	l.Entries = l.Entries[:0]
	dist2 := b.ListDist * b.ListDist

	rx := int(b.ListDist/b.colW) + 1
	ry := int(b.ListDist/b.colH) + 1

	prevCol := int32(-1)
	for ic := 0; ic < numI; ic++ {
		l.EntryOff[ic] = int32(len(l.Entries))
		if b.realI[ic] == 0 {
			continue
		}
		if c := b.icCol[ic]; c != prevCol {
			b.collectCandidates(int(c), rx, ry)
			prevCol = c
		}
		iMin, iMax := l.IMin[ic], l.IMax[ic]
		icBase := ic * b.M

		for _, c := range b.cand {
			// Column-level x/y prune with the column rectangle (a superset
			// of every j-cluster AABB inside it).
			cx, cy := int(c)%b.nx, int(c)/b.nx
			gx := wrapGap(iMin.X, iMax.X, float64(cx)*b.colW, float64(cx+1)*b.colW, b.Box.X)
			gy := wrapGap(iMin.Y, iMax.Y, float64(cy)*b.colH, float64(cy+1)*b.colH, b.Box.Y)
			colXY := gx*gx + gy*gy
			if colXY > dist2 {
				continue
			}
			jcLo := int(b.colLo[c]) / b.N
			jcHi := int(b.colHi[c]) / b.N
			for jc := jcLo; jc < jcHi; jc++ {
				jcBase := jc * b.N
				// Newton's 3rd law: only entries that can hold an ordered
				// pair (some j-slot after some i-slot).
				if jcBase+b.N-1 <= icBase {
					continue
				}
				if b.realJ[jc] == 0 {
					continue
				}
				jMin, jMax := b.jMin[jc], b.jMax[jc]
				gz := wrapGap(iMin.Z, iMax.Z, jMin.Z, jMax.Z, b.Box.Z)
				if colXY+gz*gz > dist2 {
					continue
				}
				jgx := wrapGap(iMin.X, iMax.X, jMin.X, jMax.X, b.Box.X)
				jgy := wrapGap(iMin.Y, iMax.Y, jMin.Y, jMax.Y, b.Box.Y)
				if jgx*jgx+jgy*jgy+gz*gz > dist2 {
					continue
				}
				mask := b.entryMask(icBase, jcBase, ic, jc)
				if mask == 0 {
					continue
				}
				l.Entries = append(l.Entries, ClusterPairEntry{J: int32(jc), Mask: mask})
			}
		}
	}
	l.EntryOff[numI] = int32(len(l.Entries))
}

// entryMask computes the interaction mask of one entry: ordering
// (Newton's 3rd law), padding, and the per-pair distance filter. Only
// pairs within ListDist at build time get a bit — exactly the Verlet
// criterion the atom-pair lists apply — so the kernels' candidate count
// matches the pair list's instead of growing with the tile volume. The
// displacement arithmetic (wrapped coordinates, branchy minimum image)
// is the same the kernels use, so the filter keeps precisely the pairs a
// kernel sweep at the build positions would find within ListDist.
func (b *ClusterBuilder) entryMask(icBase, jcBase, ic, jc int) uint64 {
	rj := b.realJ[jc]
	ri := b.realI[ic]
	dist2 := b.ListDist * b.ListDist
	bx, by, bz := b.Box.X, b.Box.Y, b.Box.Z
	hx, hy, hz := bx/2, by/2, bz/2
	ordered := jcBase >= icBase+b.M // disjoint views: every j-slot follows every i-slot

	// Stage the j-cluster coordinates once per entry into fixed arrays
	// (every later index is masked with &7, so the pair loop runs with no
	// bounds checks), and iterate only the real j-slots via rj's set bits.
	// Padding slots hold stale coordinates but are never visited.
	var xj, yj, zj [8]float64
	for m := rj; m != 0; m &= m - 1 {
		bb := bits.TrailingZeros64(m) & 7
		js := jcBase + bb
		xj[bb], yj[bb], zj[bb] = b.sx[js], b.sy[js], b.sz[js]
	}
	var mask uint64
	for a := 0; a < b.M; a++ {
		if ri&(1<<uint(a)) == 0 {
			continue
		}
		is := icBase + a
		xa, ya, za := b.sx[is], b.sy[is], b.sz[is]
		rowBit := uint64(1) << uint(a*b.N)
		lim := -1 // ordered: no j-slot can precede an i-slot
		if !ordered {
			lim = is - jcBase // skip bb with jcBase+bb <= is
		}
		for m := rj; m != 0; m &= m - 1 {
			bb := bits.TrailingZeros64(m) & 7
			if bb <= lim {
				continue
			}
			dx := xa - xj[bb]
			if dx > hx {
				dx -= bx
			} else if dx < -hx {
				dx += bx
			}
			dy := ya - yj[bb]
			if dy > hy {
				dy -= by
			} else if dy < -hy {
				dy += by
			}
			dz := za - zj[bb]
			if dz > hz {
				dz -= bz
			} else if dz < -hz {
				dz += bz
			}
			if dx*dx+dy*dy+dz*dz > dist2 {
				continue
			}
			mask |= rowBit << uint(bb)
		}
	}
	return mask
}

// collectCandidates gathers the distinct columns within the search window
// of column c, sorted ascending (so entries emit in ascending J).
func (b *ClusterBuilder) collectCandidates(c, rx, ry int) {
	cx, cy := c%b.nx, c/b.nx
	b.cand = b.cand[:0]
	pushRange := func(cyy int) {
		rowBase := cyy * b.nx
		if 2*rx+1 >= b.nx {
			for x := 0; x < b.nx; x++ {
				b.cand = append(b.cand, int32(rowBase+x))
			}
			return
		}
		for dx := -rx; dx <= rx; dx++ {
			x := cx + dx
			if x < 0 {
				x += b.nx
			} else if x >= b.nx {
				x -= b.nx
			}
			b.cand = append(b.cand, int32(rowBase+x))
		}
	}
	if 2*ry+1 >= b.ny {
		for y := 0; y < b.ny; y++ {
			pushRange(y)
		}
	} else {
		for dy := -ry; dy <= ry; dy++ {
			y := cy + dy
			if y < 0 {
				y += b.ny
			} else if y >= b.ny {
				y -= b.ny
			}
			pushRange(y)
		}
	}
	// Insertion sort (allocation-free; ≤ a few hundred candidates).
	for i := 1; i < len(b.cand); i++ {
		v := b.cand[i]
		j := i - 1
		for j >= 0 && b.cand[j] > v {
			b.cand[j+1] = b.cand[j]
			j--
		}
		b.cand[j+1] = v
	}
}

// applyExclusions clears excluded pairs from the interaction masks and
// flags modified 1-4 pairs. Entries are sorted by J per i-cluster, so
// each pair locates its entry with one binary search.
func (b *ClusterBuilder) applyExclusions(excl func(fn func(i, j int32, modified bool))) {
	l := &b.list
	m32, n32 := int32(b.M), int32(b.N)
	excl(func(i, j int32, modified bool) {
		si, sj := l.SlotOf[i], l.SlotOf[j]
		if si > sj {
			si, sj = sj, si
		}
		ic, jc := si/m32, sj/n32
		lo, hi := int(l.EntryOff[ic]), int(l.EntryOff[ic+1])
		for lo < hi {
			mid := (lo + hi) / 2
			if l.Entries[mid].J < jc {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo == int(l.EntryOff[ic+1]) || l.Entries[lo].J != jc {
			return // beyond the list distance: never evaluated
		}
		bit := uint64(1) << uint((si%m32)*n32+sj%n32)
		e := &l.Entries[lo]
		if e.Mask&bit == 0 {
			return
		}
		if modified {
			e.Mod |= bit
		} else {
			e.Mask &^= bit
		}
	})
}

func resizeI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n, n+n/8+8)
	}
	return s[:n]
}

func resizeF64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n, n+n/8+8)
	}
	return s[:n]
}

func resizeU64(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n, n+n/8+8)
	}
	return s[:n]
}

func resizeV3(s []vec.V3, n int) []vec.V3 {
	if cap(s) < n {
		return make([]vec.V3, n, n+n/8+8)
	}
	return s[:n]
}
