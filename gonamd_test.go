package gonamd_test

import (
	"bytes"
	"math"
	"testing"

	"gonamd"
)

// TestFacadeEndToEnd exercises the public API the way the README's
// quickstart does: build, minimize, run sequential and parallel dynamics,
// and run a small cluster simulation.
func TestFacadeEndToEnd(t *testing.T) {
	spec := gonamd.WaterBoxSpec(16, 99)
	sys, st, err := gonamd.BuildSystem(spec)
	if err != nil {
		t.Fatal(err)
	}
	ff := gonamd.StandardForceField(7.0)

	seqEng, err := gonamd.NewSequential(sys, ff, st)
	if err != nil {
		t.Fatal(err)
	}
	seqEng.Minimize(50, 0.2)
	e0 := seqEng.Energies().Total()
	seqEng.Run(10, 0.5)
	if math.Abs(seqEng.Energies().Total()-e0) > 0.1*math.Abs(e0)+50 {
		t.Errorf("sequential energy jumped: %v -> %v", e0, seqEng.Energies().Total())
	}

	parEng, err := gonamd.NewParallel(sys, ff, st, 2)
	if err != nil {
		t.Fatal(err)
	}
	parEng.Run(5, 0.5)
	if parEng.Temperature() <= 0 {
		t.Error("parallel run lost all kinetic energy")
	}
}

func TestFacadeClusterSim(t *testing.T) {
	spec := gonamd.BRSpec()
	spec.Temperature = 0
	sys, st, err := gonamd.BuildSystem(spec)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := gonamd.NewGridDims(sys, spec.PatchDims, gonamd.Cutoff)
	if err != nil {
		t.Fatal(err)
	}
	w, err := gonamd.BuildWorkload(spec.Name, sys, st, grid, gonamd.Cutoff, gonamd.Cutoff+1.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, model := range []gonamd.MachineModel{gonamd.ASCIRed(), gonamd.T3E(), gonamd.Origin2000()} {
		sim, err := gonamd.NewClusterSim(w, gonamd.ClusterConfig{
			PEs:          8,
			Model:        model,
			SplitSelf:    true,
			GrainSplit:   true,
			SplitBonded:  true,
			MulticastOpt: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		res := sim.Run()
		speedup := res.SeqTime / res.AvgStep
		if speedup < 5 || speedup > 8 {
			t.Errorf("%s: 8-PE speedup %.2f out of range", model.Name, speedup)
		}
	}
}

func TestMachineModelsOrdering(t *testing.T) {
	// The Origin's CPUs are the fastest of the three, ASCI-Red's the
	// slowest; sequential time ordering must reflect that.
	c := gonamd.ASCIRed()
	tt := gonamd.T3E()
	o := gonamd.Origin2000()
	if !(o.CPUFactor < tt.CPUFactor && tt.CPUFactor < c.CPUFactor) {
		t.Errorf("CPU factors out of order: origin %v, t3e %v, asci %v", o.CPUFactor, tt.CPUFactor, c.CPUFactor)
	}
}

func TestFacadeConstraintsAndTrajectory(t *testing.T) {
	spec := gonamd.WaterBoxSpec(14, 55)
	sys, st, err := gonamd.BuildSystem(spec)
	if err != nil {
		t.Fatal(err)
	}
	ff := gonamd.StandardForceField(6.0)
	eng, err := gonamd.NewSequential(sys, ff, st)
	if err != nil {
		t.Fatal(err)
	}
	eng.Minimize(100, 0.2)
	c, err := gonamd.NewHBondConstraints(sys, ff)
	if err != nil {
		t.Fatal(err)
	}
	if c.Count() != len(sys.Bonds) {
		t.Fatalf("water should constrain every bond: %d vs %d", c.Count(), len(sys.Bonds))
	}

	var buf bytes.Buffer
	w, err := gonamd.NewTrajWriter(&buf, sys.N(), sys.Box)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 5; s++ {
		if err := eng.StepConstrained(2.0, c); err != nil {
			t.Fatal(err)
		}
		if err := w.WriteFrame(int64(s), float64(s)*2, st.Pos); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := gonamd.NewTrajReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	frames, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 5 {
		t.Fatalf("frames = %d", len(frames))
	}
	msd := gonamd.MSD(sys, frames, func(int) bool { return true })
	if len(msd) != 5 || msd[4] <= 0 {
		t.Errorf("MSD = %v", msd)
	}
}

func TestFacadeNVT(t *testing.T) {
	spec := gonamd.WaterBoxSpec(13, 66)
	sys, st, err := gonamd.BuildSystem(spec)
	if err != nil {
		t.Fatal(err)
	}
	ff := gonamd.StandardForceField(6.0)
	eng, err := gonamd.NewSequential(sys, ff, st)
	if err != nil {
		t.Fatal(err)
	}
	eng.Minimize(100, 0.2)
	eng.Thermo = &gonamd.Berendsen{Target: 200, Tau: 20}
	eng.Run(150, 0.5)
	if temp := eng.Temperature(); math.Abs(temp-200) > 60 {
		t.Errorf("NVT temperature %.1f, want near 200", temp)
	}
}

// TestFacadeEnsemble exercises the replica-exchange API end to end:
// build, run with exchanges, checkpoint to a buffer, resume into a fresh
// ensemble, and verify the continuation is bitwise-identical.
func TestFacadeEnsemble(t *testing.T) {
	sys, st, err := gonamd.BuildSystem(gonamd.WaterBoxSpec(12, 4))
	if err != nil {
		t.Fatal(err)
	}
	ff := gonamd.StandardForceField(6.0)
	m, err := gonamd.NewSequential(sys, ff, st)
	if err != nil {
		t.Fatal(err)
	}
	m.Minimize(30, 0.2)

	cfg := gonamd.EnsembleConfig{
		Temperatures:  gonamd.GeometricLadder(300, 400, 3),
		ExchangeEvery: 10,
		Seed:          21,
		Trace:         gonamd.NewTraceLog(),
	}
	ens, err := gonamd.NewEnsemble(sys, ff, st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ens.Run(20); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ens.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ens.Run(20); err != nil {
		t.Fatal(err)
	}

	resumed, err := gonamd.NewEnsemble(sys, ff, st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.Resume(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if err := resumed.Run(20); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ens.NumReplicas(); i++ {
		a, b := ens.Replica(i).State(), resumed.Replica(i).State()
		for k := range a.Pos {
			if a.Pos[k] != b.Pos[k] || a.Vel[k] != b.Vel[k] {
				t.Fatalf("replica %d diverged after resume", i)
			}
		}
	}
	for i, rate := range ens.AcceptanceRates() {
		if rate < 0 || rate > 1 {
			t.Errorf("pair %d acceptance rate %v outside [0, 1]", i, rate)
		}
	}
	if len(cfg.Trace.Records) == 0 {
		t.Error("ensemble run left no trace records")
	}
}
