// analysis runs a short water simulation, writes a binary trajectory,
// reads it back, and computes the standard structural and dynamic
// analyses: the O-O radial distribution function and the mean squared
// displacement.
package main

import (
	"bytes"
	"fmt"
	"log"

	"gonamd"
	"gonamd/internal/forcefield"
)

func main() {
	log.SetFlags(0)
	spec := gonamd.WaterBoxSpec(18, 7)
	sys, st, err := gonamd.BuildSystem(spec)
	if err != nil {
		log.Fatal(err)
	}
	ff := gonamd.StandardForceField(7.0)

	eng, err := gonamd.NewSequential(sys, ff, st, gonamd.WithPairlist(1.5))
	if err != nil {
		log.Fatal(err)
	}
	eng.Minimize(200, 0.2)

	var buf bytes.Buffer
	w, err := gonamd.NewTrajWriter(&buf, sys.N(), sys.Box)
	if err != nil {
		log.Fatal(err)
	}
	const frames = 40
	for f := 0; f < frames; f++ {
		eng.Run(5, 1.0) // 5 fs between frames
		if err := w.WriteFrame(int64(f*5), float64(f*5), st.Pos); err != nil {
			log.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated %d fs of %d waters; trajectory: %d frames, %d bytes (pairlist rebuilds: %d)\n",
		frames*5, sys.N()/3, w.Frames(), buf.Len(), eng.PairlistRebuilds())

	r, err := gonamd.NewTrajReader(&buf)
	if err != nil {
		log.Fatal(err)
	}
	all, err := r.ReadAll()
	if err != nil {
		log.Fatal(err)
	}

	isO := func(i int) bool { return sys.Atoms[i].Type == forcefield.TypeOW }
	g := gonamd.RDF(sys, all, isO, isO, 8.0, 32)
	fmt.Println("\nO-O radial distribution function g(r):")
	for b, v := range g {
		r0 := float64(b) * 0.25
		bar := int(v * 12)
		if bar > 60 {
			bar = 60
		}
		fmt.Printf("%5.2f Å |%s %.2f\n", r0, stars(bar), v)
	}

	msd := gonamd.MSD(sys, all, isO)
	fmt.Println("\nO mean squared displacement:")
	for f := 0; f < len(msd); f += 8 {
		fmt.Printf("t=%4d fs  MSD=%6.3f Å²\n", f*5, msd[f])
	}
}

func stars(n int) string {
	s := make([]byte, n)
	for i := range s {
		s[i] = '*'
	}
	return string(s)
}
