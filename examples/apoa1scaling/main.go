// apoa1scaling reproduces the paper's headline experiment in miniature:
// scaling a biomolecular simulation across simulated processors of the
// ASCI-Red machine model. By default it uses the small bR benchmark
// (3,762 atoms, Table 4); pass -full to run the 92,224-atom ApoA-I
// system of Table 2 (slower to set up: exact pair counting).
package main

import (
	"flag"
	"fmt"
	"log"

	"gonamd"
)

func main() {
	log.SetFlags(0)
	full := flag.Bool("full", false, "use the full ApoA-I benchmark instead of bR")
	flag.Parse()

	spec := gonamd.BRSpec()
	peCounts := []int{1, 2, 4, 8, 16, 32, 64, 128, 256}
	if *full {
		spec = gonamd.ApoA1Spec()
		peCounts = []int{1, 4, 16, 64, 256, 1024, 2048}
	}
	spec.Temperature = 0

	fmt.Printf("building %s (%d atoms)...\n", spec.Name, spec.TargetAtoms)
	sys, st, err := gonamd.BuildSystem(spec)
	if err != nil {
		log.Fatal(err)
	}
	grid, err := gonamd.NewGridDims(sys, spec.PatchDims, gonamd.Cutoff)
	if err != nil {
		log.Fatal(err)
	}
	w, err := gonamd.BuildWorkload(spec.Name, sys, st, grid, gonamd.Cutoff, gonamd.Cutoff+1.5)
	if err != nil {
		log.Fatal(err)
	}
	model := gonamd.ASCIRed()
	fmt.Printf("patches: %d, modeled sequential step: %.3g s\n",
		grid.NumPatches(), model.SeqTime(w.Counts()))

	fmt.Printf("%6s %12s %9s %9s %8s\n", "procs", "s/step", "speedup", "eff%", "GFLOPS")
	var base float64
	for _, pes := range peCounts {
		sim, err := gonamd.NewClusterSim(w, gonamd.ClusterConfig{
			PEs:          pes,
			Model:        model,
			SplitSelf:    true,
			GrainSplit:   true,
			SplitBonded:  true,
			MulticastOpt: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		res := sim.Run()
		if base == 0 {
			base = res.AvgStep * float64(pes)
		}
		speedup := base / res.AvgStep
		fmt.Printf("%6d %12.4g %9.1f %8.1f%% %8.3g\n",
			pes, res.AvgStep, speedup, 100*speedup/float64(pes), res.GFLOPS)
	}
}
