// loadbalance walks through the paper's three-stage measurement-based
// load balancing (§3.2) on the bR benchmark: static placement only, then
// greedy + refinement, showing step times, the balancer's own imbalance
// statistics, and proxy counts at each stage.
package main

import (
	"fmt"
	"log"

	"gonamd"
)

func main() {
	log.SetFlags(0)
	spec := gonamd.BRSpec()
	spec.Temperature = 0
	sys, st, err := gonamd.BuildSystem(spec)
	if err != nil {
		log.Fatal(err)
	}
	grid, err := gonamd.NewGridDims(sys, spec.PatchDims, gonamd.Cutoff)
	if err != nil {
		log.Fatal(err)
	}
	w, err := gonamd.BuildWorkload(spec.Name, sys, st, grid, gonamd.Cutoff, gonamd.Cutoff+1.5)
	if err != nil {
		log.Fatal(err)
	}
	model := gonamd.ASCIRed()

	const pes = 48
	base := gonamd.ClusterConfig{
		PEs:          pes,
		Model:        model,
		SplitSelf:    true,
		GrainSplit:   true,
		SplitBonded:  true,
		MulticastOpt: true,
	}

	// Stage 1: static placement only (patches via recursive coordinate
	// bisection, computes at their base patch homes).
	cfg := base
	cfg.DisableLB = true
	sim, err := gonamd.NewClusterSim(w, cfg)
	if err != nil {
		log.Fatal(err)
	}
	static := sim.Run()
	fmt.Printf("%s on %d simulated PEs (%d compute objects)\n\n", spec.Name, pes, static.NumComputes)
	fmt.Printf("stage 1, static placement:        %8.2f ms/step (max %d proxies/patch)\n",
		static.AvgStep*1e3, static.MaxProxiesPerPatch)

	// Stages 2+3: measurement-based greedy remap, then refinement.
	sim, err = gonamd.NewClusterSim(w, base)
	if err != nil {
		log.Fatal(err)
	}
	balanced := sim.Run()
	fmt.Printf("stages 2+3, greedy then refine:   %8.2f ms/step (max %d proxies/patch)\n\n",
		balanced.AvgStep*1e3, balanced.MaxProxiesPerPatch)

	for i, lb := range balanced.LBStats {
		name := "greedy+refine"
		if i == 1 {
			name = "refine only"
		}
		fmt.Printf("balancing pass %d (%s): predicted max load %.2f ms, avg %.2f ms, imbalance %.2f ms, %d proxies\n",
			i+1, name, lb.MaxLoad*1e3, lb.AvgLoad*1e3, lb.Imbalance*1e3, lb.Proxies)
	}
	fmt.Printf("\nspeedup from load balancing: %.2f×\n", static.AvgStep/balanced.AvgStep)
}
