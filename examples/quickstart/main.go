// Quickstart: build a small water box, relax it, and run real parallel
// molecular dynamics on all CPU cores, printing energies as it goes.
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"gonamd"
)

func main() {
	log.SetFlags(0)

	// A 24 Å water box (~460 water molecules) at 300 K.
	spec := gonamd.WaterBoxSpec(24, 42)
	sys, st, err := gonamd.BuildSystem(spec)
	if err != nil {
		log.Fatal(err)
	}
	ff := gonamd.StandardForceField(9.0)
	fmt.Printf("built %q: %d atoms, %d bonds, %d angles, box %v Å\n",
		spec.Name, sys.N(), len(sys.Bonds), len(sys.Angles), sys.Box)

	// Relax the packed configuration with the sequential minimizer.
	minimizer, err := gonamd.NewSequential(sys, ff, st)
	if err != nil {
		log.Fatal(err)
	}
	before := minimizer.Energies().Potential()
	after := minimizer.Minimize(200, 0.2)
	fmt.Printf("minimized: %.1f -> %.1f kcal/mol\n", before, after)

	// Run NVE dynamics on every core, with cached Verlet block lists and
	// a Projections-style trace attached.
	tlog := gonamd.NewTraceLog()
	eng, err := gonamd.NewParallel(sys, ff, st, 0,
		gonamd.WithBlockLists(1.5), gonamd.WithTrace(tlog))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("running on %d workers (%d tasks)\n", eng.Workers(), eng.NumTasks())

	const dt = 0.5 // fs
	start := time.Now()
	for block := 0; block < 5; block++ {
		en := eng.Run(20, dt)
		fmt.Printf("t=%5.1f fs  T=%6.1f K  %s\n",
			float64((block+1)*20)*dt, eng.Temperature(), en)
	}
	elapsed := time.Since(start)
	fmt.Printf("100 steps in %v on %d cores (%.1f ms/step)\n",
		elapsed.Round(time.Millisecond), runtime.NumCPU(),
		float64(elapsed.Milliseconds())/100)

	// Where did the time go? The trace feeds the projections analyzer.
	rep := gonamd.AnalyzeTrace(tlog, gonamd.ProjectionsOptions{})
	fmt.Printf("\nutilization %.1f%% over %d PEs; per-category profile:\n", rep.Utilization*100, rep.PEs)
	for _, c := range rep.Categories {
		fmt.Printf("  %-12s %8.3fs  %5.1f%%\n", c.Category, c.Seconds, c.PctBusy)
	}
}
