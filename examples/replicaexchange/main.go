// Replica exchange: run four replicas of a water box on a temperature
// ladder, let neighboring rungs swap configurations under the Metropolis
// rule, inspect the exchange statistics and the per-replica trace, then
// demonstrate exact checkpoint/restart: a resumed ensemble finishes in a
// state bitwise-identical to one that never stopped.
package main

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"log"
	"math"

	"gonamd"
)

func main() {
	log.SetFlags(0)

	// 1. Build and relax a small water box.
	sys, st, err := gonamd.BuildSystem(gonamd.WaterBoxSpec(14, 2024))
	if err != nil {
		log.Fatal(err)
	}
	ff := gonamd.StandardForceField(7.0)
	m, err := gonamd.NewSequential(sys, ff, st)
	if err != nil {
		log.Fatal(err)
	}
	m.Minimize(100, 0.2)
	fmt.Printf("system: %d atoms, box %v Å\n", sys.N(), sys.Box)

	// 2. Four rungs, geometrically spaced. A tight ladder keeps the
	// potential-energy distributions of neighbors overlapping, which is
	// what gives usable acceptance rates.
	ladder := gonamd.GeometricLadder(300, 330, 4)
	tlog := gonamd.NewTraceLog()
	cfg := gonamd.EnsembleConfig{
		Temperatures:  ladder,
		Dt:            0.5,
		ExchangeEvery: 20,
		Seed:          7,
		Trace:         tlog,
	}
	fmt.Printf("ladder: %.1f K\n", ladder)

	// 3. Run 300 steps with exchange attempts every 20.
	ens, err := gonamd.NewEnsemble(sys, ff, st, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := ens.Run(300); err != nil {
		log.Fatal(err)
	}
	att, acc := ens.ExchangeCounts()
	for i, rate := range ens.AcceptanceRates() {
		fmt.Printf("pair %.1fK <-> %.1fK: accepted %d/%d (%.0f%%)\n",
			ladder[i], ladder[i+1], acc[i], att[i], 100*rate)
	}

	// 4. The trace log covers the ensemble the way Projections covers a
	// single run: per-replica step timing plus every exchange decision.
	fmt.Println("\ntrace summary (top entries):")
	for i, s := range tlog.SummaryByEntry() {
		if i == 3 {
			break
		}
		fmt.Printf("  %-18s ×%-4d total %.3fs\n", s.Entry, s.Count, s.Total)
	}

	// 5. Checkpoint mid-run, keep going, then resume a fresh ensemble from
	// the checkpoint and run it the same number of steps: the two must end
	// bitwise-identical.
	var ck bytes.Buffer
	if err := ens.Checkpoint(&ck); err != nil {
		log.Fatal(err)
	}
	if err := ens.Run(200); err != nil {
		log.Fatal(err)
	}

	resumed, err := gonamd.NewEnsemble(sys, ff, st, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := resumed.Resume(bytes.NewReader(ck.Bytes())); err != nil {
		log.Fatal(err)
	}
	if err := resumed.Run(200); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nuninterrupted run: step %d, state hash %x\n", ens.Step(), hash(ens))
	fmt.Printf("resumed run:       step %d, state hash %x\n", resumed.Step(), hash(resumed))
	if hash(ens) == hash(resumed) {
		fmt.Println("kill-and-resume is bitwise-identical ✓")
	} else {
		fmt.Println("MISMATCH: resumed trajectory diverged ✗")
	}
}

// hash digests every replica's positions and velocities bit-for-bit.
func hash(e *gonamd.Ensemble) uint64 {
	h := fnv.New64a()
	var b [8]byte
	word := func(f float64) {
		u := math.Float64bits(f)
		for i := range b {
			b[i] = byte(u >> (8 * i))
		}
		h.Write(b[:])
	}
	for i := 0; i < e.NumReplicas(); i++ {
		st := e.Replica(i).State()
		for k := range st.Pos {
			word(st.Pos[k].X)
			word(st.Pos[k].Y)
			word(st.Pos[k].Z)
			word(st.Vel[k].X)
			word(st.Vel[k].Y)
			word(st.Vel[k].Z)
		}
	}
	return h.Sum64()
}
