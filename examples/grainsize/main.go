// grainsize demonstrates §4.2.1 grainsize control (Figures 1-2): the
// distribution of nonbonded compute-object execution times before and
// after splitting heavy face-pair computes, on the bR benchmark.
package main

import (
	"fmt"
	"log"

	"gonamd"
	"gonamd/internal/trace"
)

func main() {
	log.SetFlags(0)
	spec := gonamd.BRSpec()
	spec.Temperature = 0
	sys, st, err := gonamd.BuildSystem(spec)
	if err != nil {
		log.Fatal(err)
	}
	grid, err := gonamd.NewGridDims(sys, spec.PatchDims, gonamd.Cutoff)
	if err != nil {
		log.Fatal(err)
	}
	w, err := gonamd.BuildWorkload(spec.Name, sys, st, grid, gonamd.Cutoff, gonamd.Cutoff+1.5)
	if err != nil {
		log.Fatal(err)
	}
	model := gonamd.ASCIRed()

	run := func(split bool) {
		sim, err := gonamd.NewClusterSim(w, gonamd.ClusterConfig{
			PEs:          16,
			Model:        model,
			SplitSelf:    true,
			GrainSplit:   split,
			SplitBonded:  true,
			MulticastOpt: true,
			DisableLB:    true,
			MeasureSteps: 2,
			CollectTrace: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		res := sim.Run()
		h := res.Trace.Histogram(0.2e-3, func(rec trace.ExecRecord) bool {
			for _, sp := range rec.Spans {
				if sp.Cat == trace.CatNonbonded {
					return true
				}
			}
			return false
		})
		label := "before splitting (Figure 1)"
		if split {
			label = "after splitting (Figure 2)"
		}
		fmt.Printf("%s: %d nonbonded executions, max grainsize %.2f ms, upper-mode fraction %.2f\n%s\n",
			label, h.N, h.MaxVal*1e3, h.Bimodality(), h.String())
	}
	run(false)
	run(true)
}
