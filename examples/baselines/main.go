// baselines reproduces the paper's §3 scalability argument: atom
// replication and atom decomposition are theoretically non-scalable
// (communication/computation ratio grows ∝ P), force decomposition grows
// ∝ √P, and spatial decomposition stays bounded when the problem grows
// with the machine. Costs use the ASCI-Red model and the ApoA-I
// reference work counts.
package main

import (
	"fmt"

	"gonamd/internal/baseline"
	"gonamd/internal/machine"
)

func main() {
	in := baseline.InputsFromCounts(machine.ReferenceCounts, machine.ASCIRed())
	fmt.Println("Fixed problem size (ApoA-I, 92,224 atoms):")
	fmt.Println(baseline.Format(in, []int{1, 8, 32, 128, 512, 2048}))

	fmt.Println("Isogranular scaling (problem grows 32× with the machine):")
	big := in
	big.Atoms *= 32
	big.Pairs *= 32
	fmt.Println(baseline.Format(big, []int{2048}))

	growth := baseline.ScalabilityGrowth(in, 64, 1024)
	fmt.Println("comm/comp ratio growth, 64 → 1024 processors (fixed size):")
	for _, m := range []baseline.Method{
		baseline.Replication, baseline.AtomDecomp, baseline.ForceDecomp, baseline.SpatialDecomp,
	} {
		fmt.Printf("  %-14s %.1f×\n", m, growth[m])
	}
}
