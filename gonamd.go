// Package gonamd is a from-scratch Go implementation of the parallel
// molecular dynamics system described in Brunner, Phillips & Kalé,
// "Scalable Molecular Dynamics for Large Biomolecular Systems" (SC 2000)
// — the NAMD2 scaling paper.
//
// It provides three ways to run molecular dynamics:
//
//   - a sequential reference engine (NewSequential),
//   - a real shared-memory parallel engine mapping the paper's compute
//     objects onto goroutine workers with measurement-based load
//     balancing (NewParallel),
//   - a deterministic cluster simulation that reproduces the paper's
//     evaluation — hybrid force/spatial decomposition with home and
//     proxy patches on up to thousands of simulated processors
//     (NewClusterSim), including the ASCI-Red, Cray T3E-900, and SGI
//     Origin 2000 machine models.
//
// Synthetic benchmark systems standing in for the paper's inputs
// (ApoA-I, BC1, bR) are built by BuildSystem with the corresponding
// Spec presets.
//
// Engines are configured with functional options at construction; the
// same configuration travels over the wire as an EngineSpec, the
// JSON-serializable bridge the gonamdd job server (internal/serve,
// cmd/gonamdd) uses to accept simulation jobs, multiplex them over a
// shared worker pool, stream energies and trajectory frames, and resume
// them bit-identically from internal/ckpt checkpoints after a crash.
package gonamd

import (
	"gonamd/internal/charm"
	"gonamd/internal/ckpt"
	"gonamd/internal/converse"
	"gonamd/internal/core"
	"gonamd/internal/ensemble"
	"gonamd/internal/forcefield"
	"gonamd/internal/ftdc"
	"gonamd/internal/ldb"
	"gonamd/internal/machine"
	"gonamd/internal/molgen"
	"gonamd/internal/par"
	"gonamd/internal/pme"
	"gonamd/internal/projections"
	"gonamd/internal/seq"
	"gonamd/internal/spatial"
	"gonamd/internal/sysio"
	"gonamd/internal/thermo"
	"gonamd/internal/topology"
	"gonamd/internal/trace"
	"gonamd/internal/traj"
	"gonamd/internal/units"
	"gonamd/internal/vec"
)

// NetworkModel is the communication cost model of a simulated machine.
type NetworkModel = converse.NetworkModel

// Core molecular data types.
type (
	// System is a molecular topology: atoms, bonded terms, exclusions.
	System = topology.System
	// State holds positions and velocities.
	State = topology.State
	// V3 is the 3-vector used for positions, velocities, and forces.
	V3 = vec.V3
	// ForceField is a CHARMM-style parameter set with evaluation kernels.
	ForceField = forcefield.Params
	// Energies is a decomposed energy report.
	Energies = seq.Energies
)

// Builders.
type (
	// Spec describes a synthetic system to build.
	Spec = molgen.Spec
	// Grid is the spatial patch decomposition geometry.
	Grid = spatial.Grid
)

// Engines. Both satisfy the Engine interface and are configured at
// construction with functional options: NewSequential(sys, ff, st,
// WithPairlist(skin)), NewParallel(sys, ff, st, workers,
// WithBlockLists(skin), WithPME(grid, beta, mts), WithTrace(log)), etc.
type (
	// Sequential is the single-threaded reference engine.
	Sequential = seq.Engine
	// Parallel is the shared-memory goroutine engine.
	Parallel = par.Engine
)

// PairBatch is the SoA pair block consumed by ForceField.NonbondedBatch —
// the batched kernel both engines stream their nonbonded pairs through.
type PairBatch = forcefield.PairBatch

// NewPairBatch allocates a reusable pair batch with the given capacity
// (forcefield.DefaultBatchSize is the engines' block size).
var NewPairBatch = forcefield.NewPairBatch

// DefaultTableBins is the bin count WithTabulatedKernels(0) auto-derives
// its interaction-table spacing from: spacing = cutoff²/DefaultTableBins.
const DefaultTableBins = forcefield.DefaultTableBins

// Full electrostatics: constructing either engine with
// WithPME(gridSpacing, beta, mtsPeriod) switches it to smooth
// particle-mesh Ewald with impulse multiple timestepping. The building
// blocks are exported for analysis code and tests.
type (
	// PMERecip is the reciprocal-space smooth-PME solver (B-spline
	// spreading, 3D FFT, influence-function convolution, force gather).
	PMERecip = pme.Recip
	// PMESolver bundles the reciprocal solver with the self, background,
	// and excluded-pair corrections — the slow-force half of PME.
	PMESolver = pme.Solver
	// EwaldDirect is the O(N²·K³) conventional Ewald sum the mesh solver
	// is validated against.
	EwaldDirect = pme.Direct
)

// NewPMERecip builds a reciprocal solver with mesh spacing at most
// gridSpacing Å; NewPMERecipK takes explicit power-of-two mesh dims.
var (
	NewPMERecip  = pme.NewRecip
	NewPMERecipK = pme.NewRecipK
)

// Coulomb is the electrostatic constant (kcal·Å/mol/e²).
const Coulomb = units.Coulomb

// MinImage returns the minimum-image displacement a-b in box.
var MinImage = vec.MinImage

// Cluster simulation types.
type (
	// ClusterConfig configures a simulated parallel run.
	ClusterConfig = core.Config
	// ClusterSim is a cluster simulation instance.
	ClusterSim = core.Sim
	// ClusterResult reports a simulated run's performance.
	ClusterResult = core.Result
	// Workload is the measured work decomposition of a system on a grid.
	Workload = core.Workload
	// MachineModel is a parallel computer cost model.
	MachineModel = machine.Model
	// WorkCounts are aggregate per-step work counts.
	WorkCounts = machine.Counts
)

// Benchmark system presets (the paper's three benchmarks plus a plain
// water box for quick starts).
var (
	ApoA1Spec    = molgen.ApoA1
	BC1Spec      = molgen.BC1
	BRSpec       = molgen.BR
	WaterBoxSpec = molgen.WaterBox
)

// Cutoff is the nonbonded cutoff radius (Å) used by all paper benchmarks.
const Cutoff = molgen.Cutoff

// BuildSystem constructs a synthetic system and its initial state.
func BuildSystem(spec Spec) (*System, *State, error) { return molgen.Build(spec) }

// StandardForceField returns the CHARMM-style parameter set used by the
// synthetic systems, with the given cutoff (Å).
func StandardForceField(cutoff float64) *ForceField { return forcefield.Standard(cutoff) }

// NewGrid divides a box into cutoff-sized patches.
func NewGrid(sys *System, cutoff float64) (*Grid, error) {
	return spatial.NewGrid(sys.Box, cutoff)
}

// NewGridDims builds a patch grid with explicit per-axis patch counts
// (the paper pins ApoA-I to 7×7×5, BC1 to 9×7×6, bR to 4×3×3).
func NewGridDims(sys *System, dims [3]int, cutoff float64) (*Grid, error) {
	return spatial.NewGridDims(sys.Box, dims, cutoff)
}

// BuildWorkload measures the per-patch and per-patch-pair work of a
// system — the expensive precomputation shared by cluster simulations.
func BuildWorkload(name string, sys *System, st *State, grid *Grid, cutoff, listDist float64) (*Workload, error) {
	return core.BuildWorkload(name, sys, st, grid, cutoff, listDist)
}

// NewClusterSim builds a simulated parallel run of a workload.
func NewClusterSim(w *Workload, cfg ClusterConfig) (*ClusterSim, error) {
	return core.NewSim(w, cfg)
}

// Fault injection for cluster simulations.
type (
	// FaultPlan is a seeded, deterministic schedule of message faults
	// (drop/delay/duplicate/reorder) and PE crash/restart events.
	FaultPlan = converse.FaultPlan
	// PECrash schedules one simulated-processor crash inside a FaultPlan.
	PECrash = converse.Crash
	// FaultStats counts the faults a simulated run actually suffered.
	FaultStats = converse.FaultStats
	// ReliableStats counts ack/retry protocol activity when
	// ClusterConfig.Reliable is set.
	ReliableStats = charm.ReliableStats
)

// WithFaultPlan returns cfg configured to run under the fault plan with
// the machinery needed to survive it: reliable entry-method delivery
// (acks, retransmission, duplicate suppression) and periodic coordinated
// checkpoints to roll back to after a PE crash.
func WithFaultPlan(cfg ClusterConfig, plan *FaultPlan) ClusterConfig {
	cfg.Faults = plan
	cfg.Reliable = true
	if cfg.CheckpointEvery == 0 {
		cfg.CheckpointEvery = 2
	}
	return cfg
}

// ErrInjectedFailure is returned by Ensemble.Run when
// EnsembleConfig.FailAt is reached — the chaos harness's injected crash.
var ErrInjectedFailure = ensemble.ErrInjectedFailure

// Temperature control and constraints for NVT / long-timestep dynamics.
type (
	// Thermostat adjusts velocities toward a target temperature.
	Thermostat = thermo.Thermostat
	// Rescale is a hard velocity-rescaling thermostat.
	Rescale = thermo.Rescale
	// Berendsen is the weak-coupling thermostat.
	Berendsen = thermo.Berendsen
	// Langevin is a stochastic thermostat with a deterministic stream.
	Langevin = thermo.Langevin
	// Constraints holds SHAKE/RATTLE bond constraints.
	Constraints = seq.Constraints
)

// NewHBondConstraints constrains every bond involving hydrogen to its
// force-field equilibrium length, enabling ~2 fs timesteps via
// Sequential.StepConstrained.
func NewHBondConstraints(sys *System, ff *ForceField) (*Constraints, error) {
	return seq.NewHBondConstraints(sys, func(typ int32) float64 { return ff.BondTypes[typ].R0 })
}

// Trajectory I/O.
type (
	// TrajWriter streams binary trajectory frames.
	TrajWriter = traj.Writer
	// TrajReader decodes binary trajectories.
	TrajReader = traj.Reader
	// TrajFrame is one decoded frame.
	TrajFrame = traj.Frame
)

// NewTrajWriter and NewTrajReader open trajectory streams; RDF and MSD
// are the standard analyses over decoded frames.
var (
	NewTrajWriter = traj.NewWriter
	NewTrajReader = traj.NewReader
	RDF           = traj.RDF
	MSD           = traj.MSD
)

// SaveSystem and LoadSystem persist built systems (gzip+gob), so
// expensive synthetic builds can be generated once and reused.
var (
	SaveSystem = sysio.Save
	LoadSystem = sysio.Load
)

// Replica-exchange ensembles: N replicas on a temperature ladder,
// advanced concurrently with periodic Metropolis exchanges, deterministic
// per seed, checkpointable, and traced per replica.
type (
	// Ensemble is a replica-exchange run (create with NewEnsemble; Run,
	// Checkpoint, and Resume drive it).
	Ensemble = ensemble.Ensemble
	// EnsembleConfig describes the ladder, schedule, and worker pool.
	EnsembleConfig = ensemble.Config
	// EnsembleReplica is one rung of a running ensemble.
	EnsembleReplica = ensemble.Replica
	// EnsembleCheckpoint is a decoded whole-ensemble snapshot.
	EnsembleCheckpoint = ckpt.EnsembleState
	// TraceLog collects Projections-style execution records; pass one in
	// EnsembleConfig.Trace to instrument an ensemble.
	TraceLog = trace.Log
)

// NewEnsemble builds a replica-exchange ensemble over the system: one
// replica per ladder rung, each starting from a copy of st.
func NewEnsemble(sys *System, ff *ForceField, st *State, cfg EnsembleConfig) (*Ensemble, error) {
	return ensemble.New(sys, ff, st, cfg)
}

// GeometricLadder spaces n temperatures geometrically from tmin to tmax
// (the standard REMD ladder); NewTraceLog creates an enabled trace log;
// LoadCheckpoint and LoadCheckpointFile decode ensemble checkpoints, and
// SaveCheckpointFile writes one atomically (temp file + rename).
var (
	GeometricLadder    = ensemble.GeometricLadder
	NewTraceLog        = trace.NewLog
	LoadCheckpoint     = ckpt.Load
	LoadCheckpointFile = ckpt.LoadFile
	SaveCheckpointFile = ckpt.SaveFile
)

// Performance analysis (internal/projections): streaming Projections-
// style analysis over trace logs — per-category time profiles that sum
// exactly to recorded busy time, per-PE utilization, grainsize
// histograms, and step-time series, as text tables, versioned JSON, and
// ASCII utilization charts.
type (
	// ProjectionsReport is a complete analysis of one trace.
	ProjectionsReport = projections.Report
	// ProjectionsOptions controls analysis (PE count override, histogram
	// bins, entry table size, step series retention).
	ProjectionsOptions = projections.Options
	// ProjectionsAnalyzer consumes execution records one at a time, for
	// traces too large to materialize.
	ProjectionsAnalyzer = projections.Analyzer
	// LoadBalanceStats is one balancing pass's evaluation (max/avg load,
	// imbalance, proxy count), as recorded in ClusterResult.LBStats.
	LoadBalanceStats = ldb.Stats
)

// Pluggable load balancing (internal/ldb): strategies are selected by
// registry name — "greedy+refine" (centralized initial balance plus
// refinement), "refine-only" (the paper's incremental balancer),
// "hierarchical" (per-group refinement plus a cross-group pass over
// group-aggregate loads, for 1024+ PEs), "diffusion" (neighbor
// averaging), and "none". A ClusterConfig takes a strategy directly in
// its LB field; the parallel engine takes one via WithLoadBalancer; job
// specs name one in EngineSpec.LBStrategy.
type (
	// LBStrategy maps migratable compute objects onto processors.
	LBStrategy = ldb.Strategy
	// UnknownLBStrategyError is returned by LookupLBStrategy for an
	// unrecognized name; it lists the valid names.
	UnknownLBStrategyError = ldb.UnknownStrategyError
)

// LookupLBStrategy resolves a registry name to a fresh strategy,
// returning an *UnknownLBStrategyError (listing the valid names) for
// unknown names; LBStrategyNames lists the registry.
var (
	LookupLBStrategy = ldb.Lookup
	LBStrategyNames  = ldb.Names
)

// AnalyzeTrace analyzes an in-memory trace log; AnalyzeTraceReader
// streams a JSONL trace file (as written by TraceLog.WriteJSON) without
// materializing it; LBReport formats balancing passes as a
// before/after table; UtilizationGantt renders the utilization-vs-time
// ASCII chart of the paper's Figures 5–6.
var (
	AnalyzeTrace       = projections.Analyze
	AnalyzeTraceReader = projections.AnalyzeReader
	LBReport           = projections.LBReport
	UtilizationGantt   = projections.UtilizationGantt
)

// Always-on FTDC-style telemetry (internal/ftdc): engines publish a
// flat metric vector (steps, per-phase seconds, rebuilds, imbalance,
// GC stats) into a lock-free recorder; samples persist in a compact
// chunked delta-of-delta format with a JSONL fallback, render with
// cmd/projections -ftdc, and stream live per job from the gonamdd
// server (GET /jobs/{id}/metrics). Attach one with WithMetrics or
// WithMetricsRecorder.
type (
	// MetricsRecorder is the live ring-buffer telemetry recorder.
	MetricsRecorder = ftdc.Recorder
	// MetricsSchema names and types the metric vector.
	MetricsSchema = ftdc.Schema
	// MetricsSample is one observation of the vector.
	MetricsSample = ftdc.Sample
	// MetricsFileWriter persists samples to a chunked FTDC file with
	// crash-safe append (Sync at checkpoints, recover on reopen).
	MetricsFileWriter = ftdc.FileWriter
)

// NewMetricsRecorder builds a recorder over the standard engine metric
// schema (interval 0 = manual SampleNow); CreateMetricsFile and
// OpenMetricsFile manage on-disk FTDC files (Open recovers torn tails
// and appends); ReadMetricsFile decodes one, tolerating a torn tail;
// EngineMetricsSchema is the schema the engines publish under.
var (
	NewMetricsRecorder  = ftdc.NewEngineRecorder
	CreateMetricsFile   = ftdc.CreateFile
	OpenMetricsFile     = ftdc.OpenFile
	ReadMetricsFile     = ftdc.ReadFile
	EngineMetricsSchema = ftdc.EngineSchema
)

// Machine models, calibrated from the paper's Table 1 using the ApoA-I
// workload's counts.
var (
	ASCIRed    = machine.ASCIRed
	T3E        = machine.T3E
	Origin2000 = machine.Origin2000
)

// CalibrateMachine builds a custom machine model: cpuFactor scales all
// CPU costs relative to ASCI-Red.
var CalibrateMachine = machine.Calibrate
