package gonamd_test

import (
	"math"
	"strings"
	"sync"
	"testing"

	"gonamd"
)

// confSystem builds one small shared water box for the conformance
// suite (construction-only tests reuse it; stepping tests copy state).
var confOnce struct {
	sync.Once
	sys *gonamd.System
	st  *gonamd.State
	ff  *gonamd.ForceField
}

func confSetup(t *testing.T) (*gonamd.System, *gonamd.State, *gonamd.ForceField) {
	t.Helper()
	confOnce.Do(func() {
		sys, st, err := gonamd.BuildSystem(gonamd.WaterBoxSpec(14, 7))
		if err != nil {
			panic(err)
		}
		confOnce.sys, confOnce.st, confOnce.ff = sys, st, gonamd.StandardForceField(6.0)
	})
	return confOnce.sys, confOnce.st, confOnce.ff
}

func cloneState(st *gonamd.State) *gonamd.State {
	c := &gonamd.State{
		Pos: append([]gonamd.V3(nil), st.Pos...),
		Vel: append([]gonamd.V3(nil), st.Vel...),
	}
	return c
}

// runSteps advances n steps and returns the final positions.
func runSteps(e gonamd.Engine, n int) []gonamd.V3 {
	for i := 0; i < n; i++ {
		e.Step(0.5)
	}
	return e.State().Pos
}

// TestEngineInterface checks both engines drive identically through the
// Engine interface: construction, stepping, accessors.
func TestEngineInterface(t *testing.T) {
	sys, st, ff := confSetup(t)
	mk := []struct {
		name  string
		build func(st *gonamd.State) (gonamd.Engine, error)
	}{
		{"sequential", func(st *gonamd.State) (gonamd.Engine, error) {
			return gonamd.NewSequential(sys, ff, st, gonamd.WithPairlist(1.5))
		}},
		{"parallel", func(st *gonamd.State) (gonamd.Engine, error) {
			return gonamd.NewParallel(sys, ff, st, 4, gonamd.WithBlockLists(1.5))
		}},
	}
	for _, m := range mk {
		t.Run(m.name, func(t *testing.T) {
			s := cloneState(st)
			e, err := m.build(s)
			if err != nil {
				t.Fatal(err)
			}
			if e.System() != sys || e.State() != s {
				t.Error("System()/State() accessors do not return the constructor arguments")
			}
			en := e.Run(3, 0.5)
			if math.IsNaN(en.Total()) {
				t.Errorf("energies NaN after 3 steps: %v", en)
			}
			if got := len(e.Forces()); got != sys.N() {
				t.Errorf("Forces() length %d, want %d", got, sys.N())
			}
			e.Invalidate() // must not panic and must leave the engine usable
			if k := e.Kinetic(); k < 0 || math.IsNaN(k) {
				t.Errorf("Kinetic() = %g", k)
			}
		})
	}
}

// TestOptionsOrderIndependent: any permutation of the same options
// yields a bitwise-identical trajectory.
func TestOptionsOrderIndependent(t *testing.T) {
	sys, st, ff := confSetup(t)
	build := func(opts ...gonamd.Option) []gonamd.V3 {
		s := cloneState(st)
		e, err := gonamd.NewParallel(sys, ff, s, 4, opts...)
		if err != nil {
			t.Fatal(err)
		}
		e.RebalanceEvery = 0
		return runSteps(e, 5)
	}
	a := build(gonamd.WithBlockLists(1.5), gonamd.WithPME(1.0, 0, 2), gonamd.WithRebalanceEvery(0))
	b := build(gonamd.WithRebalanceEvery(0), gonamd.WithPME(1.0, 0, 2), gonamd.WithBlockLists(1.5))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("atom %d positions differ between option orders: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestPMEAutoBetaMatchesExplicit: WithPME's auto-derived Ewald splitting
// parameter (beta 0 → 3.12/cutoff) is bitwise identical to passing the
// same value explicitly, for both engines. (This pins the configuration
// cross-check the deleted post-construction Enable* mutators used to
// provide: two independently configured engines must agree exactly.)
func TestPMEAutoBetaMatchesExplicit(t *testing.T) {
	sys, st, ff := confSetup(t)

	t.Run("sequential", func(t *testing.T) {
		s1 := cloneState(st)
		auto, err := gonamd.NewSequential(sys, ff, s1, gonamd.WithPairlist(1.5), gonamd.WithPME(1.0, 0, 2))
		if err != nil {
			t.Fatal(err)
		}
		s2 := cloneState(st)
		explicit, err := gonamd.NewSequential(sys, ff, s2,
			gonamd.WithPairlist(1.5), gonamd.WithPME(1.0, 3.12/ff.Cutoff, 2))
		if err != nil {
			t.Fatal(err)
		}
		a, b := runSteps(auto, 5), runSteps(explicit, 5)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("atom %d: auto beta %v != explicit beta %v", i, a[i], b[i])
			}
		}
	})

	t.Run("parallel", func(t *testing.T) {
		s1 := cloneState(st)
		auto, err := gonamd.NewParallel(sys, ff, s1, 4,
			gonamd.WithBlockLists(1.5), gonamd.WithPME(1.0, 0, 2), gonamd.WithRebalanceEvery(0))
		if err != nil {
			t.Fatal(err)
		}
		s2 := cloneState(st)
		explicit, err := gonamd.NewParallel(sys, ff, s2, 4,
			gonamd.WithBlockLists(1.5), gonamd.WithPME(1.0, 3.12/ff.Cutoff, 2), gonamd.WithRebalanceEvery(0))
		if err != nil {
			t.Fatal(err)
		}
		a, b := runSteps(auto, 5), runSteps(explicit, 5)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("atom %d: auto beta %v != explicit beta %v", i, a[i], b[i])
			}
		}
	})
}

// TestTraceMatchesUntraced: attaching a trace must not perturb the
// trajectory — instrumentation only observes.
func TestTraceMatchesUntraced(t *testing.T) {
	sys, st, ff := confSetup(t)
	s1 := cloneState(st)
	plain, err := gonamd.NewParallel(sys, ff, s1, 4, gonamd.WithBlockLists(1.5), gonamd.WithRebalanceEvery(0))
	if err != nil {
		t.Fatal(err)
	}
	s2 := cloneState(st)
	tlog := gonamd.NewTraceLog()
	traced, err := gonamd.NewParallel(sys, ff, s2, 4,
		gonamd.WithBlockLists(1.5), gonamd.WithRebalanceEvery(0), gonamd.WithTrace(tlog))
	if err != nil {
		t.Fatal(err)
	}
	a, b := runSteps(plain, 5), runSteps(traced, 5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("atom %d: tracing changed the trajectory: %v vs %v", i, a[i], b[i])
		}
	}
	if len(tlog.Records) == 0 {
		t.Fatal("traced engine emitted no records")
	}
	rep := gonamd.AnalyzeTrace(tlog, gonamd.ProjectionsOptions{})
	sum := 0.0
	for _, c := range rep.Categories {
		sum += c.Seconds
	}
	if sum != rep.BusySeconds {
		t.Errorf("engine trace violates exact-sum invariant: %g vs %g", sum, rep.BusySeconds)
	}
	if rep.Steps == nil || rep.Steps.N != 5 {
		t.Errorf("step markers: got %+v, want 5 steps", rep.Steps)
	}
}

// TestOptionValidation: every misuse is rejected at construction with a
// descriptive error, not a panic.
func TestOptionValidation(t *testing.T) {
	sys, st, ff := confSetup(t)
	cases := []struct {
		name string
		err  string
		run  func() error
	}{
		{"negative pairlist skin", "must be positive", func() error {
			_, err := gonamd.NewSequential(sys, ff, cloneState(st), gonamd.WithPairlist(-1))
			return err
		}},
		{"zero block skin", "must be positive", func() error {
			_, err := gonamd.NewParallel(sys, ff, cloneState(st), 2, gonamd.WithBlockLists(0))
			return err
		}},
		{"pairlist on parallel", "sequential engine", func() error {
			_, err := gonamd.NewParallel(sys, ff, cloneState(st), 2, gonamd.WithPairlist(1.5))
			return err
		}},
		{"block lists on sequential", "parallel engine", func() error {
			_, err := gonamd.NewSequential(sys, ff, cloneState(st), gonamd.WithBlockLists(1.5))
			return err
		}},
		{"zero PME grid", "must be positive", func() error {
			_, err := gonamd.NewSequential(sys, ff, cloneState(st), gonamd.WithPME(0, 0, 1))
			return err
		}},
		{"zero MTS period", "must be ≥ 1", func() error {
			_, err := gonamd.NewSequential(sys, ff, cloneState(st), gonamd.WithPME(1.0, 0, 0))
			return err
		}},
		{"shake with PME", "cannot be combined", func() error {
			_, err := gonamd.NewSequential(sys, ff, cloneState(st),
				gonamd.WithHBondConstraints(), gonamd.WithPME(1.0, 0, 4))
			return err
		}},
		{"rebalance on sequential", "parallel engine", func() error {
			_, err := gonamd.NewSequential(sys, ff, cloneState(st), gonamd.WithRebalanceEvery(10))
			return err
		}},
		{"negative rebalance", "must be ≥ 0", func() error {
			_, err := gonamd.NewParallel(sys, ff, cloneState(st), 2, gonamd.WithRebalanceEvery(-1))
			return err
		}},
		{"cluster skin without cluster lists", "requires WithClusterLists", func() error {
			_, err := gonamd.NewSequential(sys, ff, cloneState(st), gonamd.WithClusterSkin(0.5))
			return err
		}},
		{"negative cluster skin", "out of range", func() error {
			_, err := gonamd.NewSequential(sys, ff, cloneState(st),
				gonamd.WithClusterLists(4, 4), gonamd.WithClusterSkin(-1))
			return err
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.run()
			if err == nil {
				t.Fatal("construction succeeded, want error")
			}
			if !strings.Contains(err.Error(), c.err) {
				t.Errorf("error %q does not mention %q", err, c.err)
			}
		})
	}
}

// TestHBondConstraintsOption: the option builds and attaches constraints
// retrievable from the engine.
func TestHBondConstraintsOption(t *testing.T) {
	sys, st, ff := confSetup(t)
	e, err := gonamd.NewSequential(sys, ff, cloneState(st), gonamd.WithHBondConstraints())
	if err != nil {
		t.Fatal(err)
	}
	c := e.Constraints()
	if c == nil || c.Count() == 0 {
		t.Fatalf("constraints not attached (got %v)", c)
	}
	if err := e.StepConstrained(2.0, c); err != nil {
		t.Fatalf("constrained step: %v", err)
	}
}
