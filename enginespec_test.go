package gonamd_test

import (
	"encoding/json"
	"reflect"
	"testing"

	"gonamd"
)

// specSystem builds a tiny water box for spec-bridge tests.
func specSystem(t *testing.T) (*gonamd.System, *gonamd.State, *gonamd.ForceField) {
	t.Helper()
	sys, st, err := gonamd.BuildSystem(gonamd.WaterBoxSpec(10, 7))
	if err != nil {
		t.Fatal(err)
	}
	return sys, st, gonamd.StandardForceField(4.5)
}

// TestEngineSpecMatchesOptions: an engine built through the JSON spec
// bridge must be bitwise-identical in behavior to one built directly
// with the corresponding functional options.
func TestEngineSpecMatchesOptions(t *testing.T) {
	sys, st, ff := specSystem(t)

	raw := `{
		"engine": "sequential",
		"pairlist_skin": 1.0,
		"thermostat": {"kind": "langevin", "temperature": 310, "seed": 99}
	}`
	var spec gonamd.EngineSpec
	if err := json.Unmarshal([]byte(raw), &spec); err != nil {
		t.Fatal(err)
	}
	stA := st.Clone()
	specEng, th, err := spec.NewEngine(sys, ff, stA)
	if err != nil {
		t.Fatal(err)
	}
	if th == nil || th.Name() != "langevin" {
		t.Fatalf("thermostat handle = %v, want langevin", th)
	}

	stB := st.Clone()
	optEng, err := gonamd.NewSequential(sys, ff, stB,
		gonamd.WithPairlist(1.0),
		gonamd.WithThermostat(&gonamd.Langevin{Target: 310, Gamma: 0.005, Seed: 99}))
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 20; i++ {
		specEng.Step(0.5)
		optEng.Step(0.5)
	}
	if !reflect.DeepEqual(stA.Pos, stB.Pos) || !reflect.DeepEqual(stA.Vel, stB.Vel) {
		t.Fatal("spec-built engine diverged from option-built engine")
	}
}

// TestEngineSpecParallel: the spec selects the parallel engine with its
// engine-specific options, including pinning rebalancing off.
func TestEngineSpecParallel(t *testing.T) {
	sys, st, ff := specSystem(t)
	zero := 0
	spec := gonamd.EngineSpec{
		Engine:         "parallel",
		Workers:        2,
		BlockListSkin:  1.0,
		RebalanceEvery: &zero,
	}
	eng, th, err := spec.NewEngine(sys, ff, st.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if th != nil {
		t.Fatalf("unexpected thermostat %v", th)
	}
	p, ok := eng.(*gonamd.Parallel)
	if !ok {
		t.Fatalf("engine type %T, want *Parallel", eng)
	}
	if p.Workers() != 2 {
		t.Fatalf("workers = %d, want 2", p.Workers())
	}
	if p.RebalanceEvery != 0 {
		t.Fatalf("RebalanceEvery = %d, want 0", p.RebalanceEvery)
	}
}

// TestEngineSpecTabulated: the tabulated wire fields lower to
// WithTabulatedKernels, and the spec-built engine reproduces the
// option-built tabulated trajectory bitwise.
func TestEngineSpecTabulated(t *testing.T) {
	sys, st, ff := specSystem(t)

	raw := `{
		"engine": "sequential",
		"cluster_m": 4, "cluster_n": 4,
		"tabulated": true
	}`
	var spec gonamd.EngineSpec
	if err := json.Unmarshal([]byte(raw), &spec); err != nil {
		t.Fatal(err)
	}
	stA := st.Clone()
	specEng, _, err := spec.NewEngine(sys, ff, stA)
	if err != nil {
		t.Fatal(err)
	}

	stB := st.Clone()
	optEng, err := gonamd.NewSequential(sys, ff, stB,
		gonamd.WithClusterLists(4, 4), gonamd.WithTabulatedKernels(0))
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 20; i++ {
		specEng.Step(0.5)
		optEng.Step(0.5)
	}
	if !reflect.DeepEqual(stA.Pos, stB.Pos) || !reflect.DeepEqual(stA.Vel, stB.Vel) {
		t.Fatal("spec-built tabulated engine diverged from option-built engine")
	}
}

// TestEngineSpecPrecisionMode: the four numerical modes name themselves
// distinctly — checkpoints record the string and services refuse to
// resume across a change, so tabulation must be part of it.
func TestEngineSpecPrecisionMode(t *testing.T) {
	cases := []struct {
		spec gonamd.EngineSpec
		want string
	}{
		{gonamd.EngineSpec{}, "fp64"},
		{gonamd.EngineSpec{MixedPrecision: true}, "fp32-mixed"},
		{gonamd.EngineSpec{Tabulated: true}, "fp64-tab"},
		{gonamd.EngineSpec{MixedPrecision: true, Tabulated: true}, "fp32-mixed-tab"},
	}
	for _, c := range cases {
		if got := c.spec.PrecisionMode(); got != c.want {
			t.Errorf("PrecisionMode(%+v) = %q, want %q", c.spec, got, c.want)
		}
	}
}

// TestEngineSpecRejections: invalid specs fail construction with the
// options layer's validation errors.
func TestEngineSpecRejections(t *testing.T) {
	sys, st, ff := specSystem(t)
	cases := []struct {
		name string
		spec gonamd.EngineSpec
	}{
		{"unknown engine", gonamd.EngineSpec{Engine: "quantum"}},
		{"pairlist on parallel", gonamd.EngineSpec{Engine: "par", PairlistSkin: 1}},
		{"blocklists on sequential", gonamd.EngineSpec{BlockListSkin: 1}},
		{"negative pme grid", gonamd.EngineSpec{PME: &gonamd.PMESpec{GridSpacing: -1}}},
		{"unknown thermostat", gonamd.EngineSpec{Thermostat: &gonamd.ThermostatSpec{Kind: "maxwell", Temperature: 300}}},
		{"cold thermostat", gonamd.EngineSpec{Thermostat: &gonamd.ThermostatSpec{Kind: "langevin"}}},
		{"shake plus pme", gonamd.EngineSpec{HBondConstraints: true, PME: &gonamd.PMESpec{GridSpacing: 1}}},
		{"tabulated without clusters", gonamd.EngineSpec{Tabulated: true}},
		{"tabulated on blocklists", gonamd.EngineSpec{Engine: "par", BlockListSkin: 1, Tabulated: true}},
		{"negative table spacing", gonamd.EngineSpec{ClusterM: 4, ClusterN: 4, Tabulated: true, TableSpacing: -0.1}},
	}
	for _, c := range cases {
		if _, _, err := c.spec.NewEngine(sys, ff, st.Clone()); err == nil {
			t.Errorf("%s: construction succeeded, want error", c.name)
		}
	}
}

// TestThermostatSpecDefaults: omitted tuning parameters take the same
// defaults the CLIs use.
func TestThermostatSpecDefaults(t *testing.T) {
	th, err := (&gonamd.ThermostatSpec{Kind: "berendsen", Temperature: 300}).New()
	if err != nil {
		t.Fatal(err)
	}
	if b, ok := th.(*gonamd.Berendsen); !ok || b.Tau != 100 {
		t.Fatalf("berendsen = %+v", th)
	}
	th, err = (&gonamd.ThermostatSpec{Kind: "rescale", Temperature: 300}).New()
	if err != nil {
		t.Fatal(err)
	}
	if r, ok := th.(*gonamd.Rescale); !ok || r.Interval != 10 {
		t.Fatalf("rescale = %+v", th)
	}
	th, err = (&gonamd.ThermostatSpec{Kind: "langevin", Temperature: 300}).New()
	if err != nil {
		t.Fatal(err)
	}
	if l, ok := th.(*gonamd.Langevin); !ok || l.Gamma != 0.005 {
		t.Fatalf("langevin = %+v", th)
	}
}
