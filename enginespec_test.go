package gonamd_test

import (
	"encoding/json"
	"reflect"
	"testing"

	"gonamd"
)

// specSystem builds a tiny water box for spec-bridge tests.
func specSystem(t *testing.T) (*gonamd.System, *gonamd.State, *gonamd.ForceField) {
	t.Helper()
	sys, st, err := gonamd.BuildSystem(gonamd.WaterBoxSpec(10, 7))
	if err != nil {
		t.Fatal(err)
	}
	return sys, st, gonamd.StandardForceField(4.5)
}

// TestEngineSpecMatchesOptions: an engine built through the JSON spec
// bridge must be bitwise-identical in behavior to one built directly
// with the corresponding functional options.
func TestEngineSpecMatchesOptions(t *testing.T) {
	sys, st, ff := specSystem(t)

	raw := `{
		"engine": "sequential",
		"pairlist_skin": 1.0,
		"thermostat": {"kind": "langevin", "temperature": 310, "seed": 99}
	}`
	var spec gonamd.EngineSpec
	if err := json.Unmarshal([]byte(raw), &spec); err != nil {
		t.Fatal(err)
	}
	stA := st.Clone()
	specEng, th, err := spec.NewEngine(sys, ff, stA)
	if err != nil {
		t.Fatal(err)
	}
	if th == nil || th.Name() != "langevin" {
		t.Fatalf("thermostat handle = %v, want langevin", th)
	}

	stB := st.Clone()
	optEng, err := gonamd.NewSequential(sys, ff, stB,
		gonamd.WithPairlist(1.0),
		gonamd.WithThermostat(&gonamd.Langevin{Target: 310, Gamma: 0.005, Seed: 99}))
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 20; i++ {
		specEng.Step(0.5)
		optEng.Step(0.5)
	}
	if !reflect.DeepEqual(stA.Pos, stB.Pos) || !reflect.DeepEqual(stA.Vel, stB.Vel) {
		t.Fatal("spec-built engine diverged from option-built engine")
	}
}

// TestEngineSpecParallel: the spec selects the parallel engine with its
// engine-specific options, including pinning rebalancing off.
func TestEngineSpecParallel(t *testing.T) {
	sys, st, ff := specSystem(t)
	zero := 0
	spec := gonamd.EngineSpec{
		Engine:         "parallel",
		Workers:        2,
		BlockListSkin:  1.0,
		RebalanceEvery: &zero,
	}
	eng, th, err := spec.NewEngine(sys, ff, st.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if th != nil {
		t.Fatalf("unexpected thermostat %v", th)
	}
	p, ok := eng.(*gonamd.Parallel)
	if !ok {
		t.Fatalf("engine type %T, want *Parallel", eng)
	}
	if p.Workers() != 2 {
		t.Fatalf("workers = %d, want 2", p.Workers())
	}
	if p.RebalanceEvery != 0 {
		t.Fatalf("RebalanceEvery = %d, want 0", p.RebalanceEvery)
	}
}

// TestEngineSpecRejections: invalid specs fail construction with the
// options layer's validation errors.
func TestEngineSpecRejections(t *testing.T) {
	sys, st, ff := specSystem(t)
	cases := []struct {
		name string
		spec gonamd.EngineSpec
	}{
		{"unknown engine", gonamd.EngineSpec{Engine: "quantum"}},
		{"pairlist on parallel", gonamd.EngineSpec{Engine: "par", PairlistSkin: 1}},
		{"blocklists on sequential", gonamd.EngineSpec{BlockListSkin: 1}},
		{"negative pme grid", gonamd.EngineSpec{PME: &gonamd.PMESpec{GridSpacing: -1}}},
		{"unknown thermostat", gonamd.EngineSpec{Thermostat: &gonamd.ThermostatSpec{Kind: "maxwell", Temperature: 300}}},
		{"cold thermostat", gonamd.EngineSpec{Thermostat: &gonamd.ThermostatSpec{Kind: "langevin"}}},
		{"shake plus pme", gonamd.EngineSpec{HBondConstraints: true, PME: &gonamd.PMESpec{GridSpacing: 1}}},
	}
	for _, c := range cases {
		if _, _, err := c.spec.NewEngine(sys, ff, st.Clone()); err == nil {
			t.Errorf("%s: construction succeeded, want error", c.name)
		}
	}
}

// TestThermostatSpecDefaults: omitted tuning parameters take the same
// defaults the CLIs use.
func TestThermostatSpecDefaults(t *testing.T) {
	th, err := (&gonamd.ThermostatSpec{Kind: "berendsen", Temperature: 300}).New()
	if err != nil {
		t.Fatal(err)
	}
	if b, ok := th.(*gonamd.Berendsen); !ok || b.Tau != 100 {
		t.Fatalf("berendsen = %+v", th)
	}
	th, err = (&gonamd.ThermostatSpec{Kind: "rescale", Temperature: 300}).New()
	if err != nil {
		t.Fatal(err)
	}
	if r, ok := th.(*gonamd.Rescale); !ok || r.Interval != 10 {
		t.Fatalf("rescale = %+v", th)
	}
	th, err = (&gonamd.ThermostatSpec{Kind: "langevin", Temperature: 300}).New()
	if err != nil {
		t.Fatal(err)
	}
	if l, ok := th.(*gonamd.Langevin); !ok || l.Gamma != 0.005 {
		t.Fatalf("langevin = %+v", th)
	}
}
