// Benchmarks regenerating every table and figure of the paper's
// evaluation. Each benchmark iteration reproduces the complete
// experiment on the simulated machines (workload construction is cached
// across iterations and benchmarks). Run with:
//
//	go test -bench=. -benchmem
//
// The custom metrics report the headline quantity of each experiment so
// the paper-vs-measured comparison appears directly in benchmark output.
package gonamd_test

import (
	"testing"

	"gonamd/internal/bench"
)

// BenchmarkTable1Audit regenerates the 1024-PE ApoA-I performance audit.
// Paper actual row: 86 ms total, 10.45 ms imbalance, 7.97 ms overhead.
func BenchmarkTable1Audit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, actual, err := bench.Table1()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(actual.Total*1e3, "ms/step@1024")
		b.ReportMetric(actual.Imbalance*1e3, "ms-imbalance")
	}
}

// BenchmarkTable2ApoA1ASCIRed regenerates ApoA-I scaling on ASCI-Red
// (paper: speedup 695 at 1024, 997 at 2048).
func BenchmarkTable2ApoA1ASCIRed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table2()
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		b.ReportMetric(last.Speedup, "speedup@2048")
		b.ReportMetric(last.GFLOPS, "GFLOPS@2048")
	}
}

// BenchmarkTable3BC1ASCIRed regenerates BC1 scaling on ASCI-Red (paper:
// speedup 1252 at 2048, 58.4 GFLOPS).
func BenchmarkTable3BC1ASCIRed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table3()
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		b.ReportMetric(last.Speedup, "speedup@2048")
		b.ReportMetric(last.GFLOPS, "GFLOPS@2048")
	}
}

// BenchmarkTable4BRASCIRed regenerates bR scaling on ASCI-Red (paper:
// speedup saturates near 49 beyond 128 processors).
func BenchmarkTable4BRASCIRed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table4()
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		b.ReportMetric(last.Speedup, "speedup@256")
	}
}

// BenchmarkTable5ApoA1T3E regenerates ApoA-I scaling on the T3E-900
// (paper: speedup 231 at 256 processors, 14.8 GFLOPS).
func BenchmarkTable5ApoA1T3E(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table5()
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		b.ReportMetric(last.Speedup, "speedup@256")
	}
}

// BenchmarkTable6ApoA1Origin regenerates ApoA-I scaling on the Origin
// 2000 (paper: speedup 70 at 80 processors, 7.86 GFLOPS).
func BenchmarkTable6ApoA1Origin(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table6()
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		b.ReportMetric(last.Speedup, "speedup@80")
	}
}

// BenchmarkFigure1GrainsizeBefore regenerates the pre-splitting grainsize
// histogram (paper: bimodal, max ≈ 42 ms).
func BenchmarkFigure1GrainsizeBefore(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h, err := bench.Figure1()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(h.MaxVal*1e3, "ms-max-grain")
		b.ReportMetric(h.Bimodality(), "upper-mode-frac")
	}
}

// BenchmarkFigure2GrainsizeAfter regenerates the post-splitting histogram
// (paper: unimodal, small maximum).
func BenchmarkFigure2GrainsizeAfter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h, err := bench.Figure2()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(h.MaxVal*1e3, "ms-max-grain")
		b.ReportMetric(h.Bimodality(), "upper-mode-frac")
	}
}

// BenchmarkFigure3TimelineBefore regenerates the naive-multicast timeline
// (paper: long integration method, idle gaps on patchless processors).
func BenchmarkFigure3TimelineBefore(b *testing.B) {
	for i := 0; i < b.N; i++ {
		v, err := bench.Figure3()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(v.IntegrateSends*1e3, "ms-integrate-method")
	}
}

// BenchmarkFigure4TimelineAfter regenerates the optimized-multicast
// timeline (paper: the critical method's duration halves).
func BenchmarkFigure4TimelineAfter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		v, err := bench.Figure4()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(v.IntegrateSends*1e3, "ms-integrate-method")
	}
}
