package gonamd

import (
	"fmt"
	"time"

	"gonamd/internal/ftdc"
	"gonamd/internal/ldb"
	"gonamd/internal/par"
	"gonamd/internal/seq"
	"gonamd/internal/thermo"
	"gonamd/internal/trace"
)

// Engine is the interface both real engines satisfy: construct one with
// NewSequential or NewParallel and drive it without caring which. The
// cluster simulation (NewClusterSim) models machines rather than
// advancing real atoms and stays outside this interface.
type Engine interface {
	// Step advances one velocity-Verlet step of dt femtoseconds.
	Step(dt float64)
	// Run advances n steps and returns the final energies.
	Run(n int, dt float64) Energies
	// ComputeForces evaluates forces at the current positions.
	ComputeForces() Energies
	// Energies returns the last evaluation's energies plus current kinetic.
	Energies() Energies
	// Forces returns the engine-owned force array from the last evaluation.
	Forces() []V3
	// Invalidate marks cached forces stale after external position edits.
	Invalidate()
	// Kinetic returns the kinetic energy in kcal/mol.
	Kinetic() float64
	// Temperature returns the instantaneous temperature in K.
	Temperature() float64
	// System returns the engine's topology.
	System() *System
	// State returns the engine's mutable positions and velocities.
	State() *State
}

var (
	_ Engine = (*Sequential)(nil)
	_ Engine = (*Parallel)(nil)
)

// engineKind discriminates which constructor is applying the options, so
// engine-specific options can reject the wrong engine by name.
type engineKind uint8

const (
	kindSequential engineKind = iota
	kindParallel
)

func (k engineKind) String() string {
	if k == kindSequential {
		return "sequential"
	}
	return "parallel"
}

// engineOptions accumulates the configuration the options record. All
// validation that spans options (or needs the force field) happens after
// every option has run, so option order never matters.
type engineOptions struct {
	kind engineKind

	pairlistSkin float64 // seq: Verlet pair list skin, 0 = off
	blockSkin    float64 // par: Verlet block list skin, 0 = off

	clusterM, clusterN int     // cluster pair lists, 0 = off
	clusterSkin        float64 // cluster list skin override (Å), 0 = default
	mixedPrecision     bool    // float32 cluster fast path
	tabulated          bool    // r²-indexed tabulated cluster kernels
	tableSpacing       float64 // table grid spacing (Å²), 0 = default

	pmeSet  bool
	pmeGrid float64
	pmeBeta float64 // 0 = auto (3.12/cutoff, erfc(3.12) ≈ 1e-5 at the cutoff)
	pmeMTS  int

	trace      *trace.Log
	metrics    *ftdc.Recorder
	thermostat thermo.Thermostat

	rebalanceEvery    int
	rebalanceEverySet bool

	lb ldb.Strategy // par: task-to-worker balancing strategy, nil = default

	hbond bool
}

// Option configures an engine at construction time. Options are applied
// by NewSequential and NewParallel in a fixed internal order, so the
// order they are passed in never changes the result. Engine-specific
// options (WithPairlist, WithBlockLists, ...) return a construction
// error when handed to the other engine.
type Option func(*engineOptions) error

// WithPairlist switches the sequential engine's nonbonded path to a
// Verlet pair list with the given skin in Å (rebuilt only when an atom
// has drifted more than skin/2). Sequential engine only; skin must be
// positive.
func WithPairlist(skin float64) Option {
	return func(o *engineOptions) error {
		if o.kind != kindSequential {
			return fmt.Errorf("gonamd: WithPairlist applies only to the sequential engine (use WithBlockLists for the parallel engine)")
		}
		if skin <= 0 {
			return fmt.Errorf("gonamd: pairlist skin %g Å must be positive", skin)
		}
		o.pairlistSkin = skin
		return nil
	}
}

// WithBlockLists caches a Verlet pair list with the given skin (Å) per
// nonbonded task of the parallel engine, rebuilt only when atoms drift
// beyond skin/2. Parallel engine only; skin must be positive.
func WithBlockLists(skin float64) Option {
	return func(o *engineOptions) error {
		if o.kind != kindParallel {
			return fmt.Errorf("gonamd: WithBlockLists applies only to the parallel engine (use WithPairlist for the sequential engine)")
		}
		if skin <= 0 {
			return fmt.Errorf("gonamd: block list skin %g Å must be positive", skin)
		}
		o.blockSkin = skin
		return nil
	}
}

// WithClusterLists switches the engine's nonbonded path to M×N cluster
// pair lists (GROMACS-style): atoms pack into spatial clusters of M
// (i-side) and N (j-side) consecutive slots, the Verlet list pairs
// clusters instead of atoms with a per-pair interaction bitmask, and the
// kernel evaluates each M×N tile with the pair invariants hoisted.
// Works on both engines; the parallel engine decomposes the list by
// spatial cell and keeps its deterministic reduction, so cluster runs
// stay bitwise reproducible for a fixed worker count and mode. M and N
// must be in [1, 8] with M·N ≤ 64 (typical: 4×4 or 4×8). The list uses
// the default skin and rebuilds under the same skin/2 drift rule as the
// other list modes. Incompatible with WithPairlist and WithBlockLists —
// each selects a different nonbonded evaluation strategy.
func WithClusterLists(m, n int) Option {
	return func(o *engineOptions) error {
		if m < 1 || m > 8 || n < 1 || n > 8 || m*n > 64 {
			return fmt.Errorf("gonamd: cluster geometry %dx%d out of range (M, N in [1, 8], M·N ≤ 64)", m, n)
		}
		o.clusterM, o.clusterN = m, n
		return nil
	}
}

// WithClusterSkin overrides the Verlet skin (Å) of the cluster pair
// lists enabled by WithClusterLists. The skin trades list size against
// rebuild frequency: every listed cluster pair within cutoff+skin is
// re-evaluated each step, while the drift guard only rebuilds once an
// atom has moved skin/2 from the list's reference positions — so a
// smaller skin shrinks the per-step kernel work linearly in
// (1+skin/cutoff)³ at the price of more frequent rebuilds. Correctness
// never depends on the value: any positive skin obeys the same drift
// rule. The default (1.5 Å) matches the atom-pair list modes; tighter
// skins (0.5–0.75 Å) are usually a net win for large boxes where the
// rebuild amortizes over hundreds of steps. Requires WithClusterLists.
func WithClusterSkin(skin float64) Option {
	return func(o *engineOptions) error {
		if !(skin > 0) || skin > 1e6 {
			return fmt.Errorf("gonamd: cluster skin %g out of range (want 0 < skin)", skin)
		}
		o.clusterSkin = skin
		return nil
	}
}

// WithMixedPrecision selects the float32 fast path for the cluster
// kernels: pair interactions evaluate in float32 from float32 position
// and parameter mirrors, with per-cluster partial sums reduced into
// float64 accumulators, bounding rounding error to the ≤8-term tile sums.
// Trajectories remain bitwise reproducible run-to-run for a fixed
// configuration, but differ from float64 trajectories (see DESIGN.md,
// "Cluster kernels & precision contract"). Requires WithClusterLists.
func WithMixedPrecision() Option {
	return func(o *engineOptions) error {
		o.mixedPrecision = true
		return nil
	}
}

// WithTabulatedKernels switches the cluster kernels to r²-indexed
// force/energy interaction tables: the combined Lennard-Jones +
// electrostatics interaction (including the Ewald real-space term when
// PME is on, and the vdW switching function) is precomputed once at
// construction as quadratic splines of E and dE/d(r²) on a uniform r²
// grid, and the pair loop becomes lookup + FMA — no Sqrt, no Erfc/Exp,
// no switching branch. spacing is the grid spacing in Å² (0 selects the
// default resolution, cutoff²/16384 bins, whose force error is well
// under 1e-6 relative — see DESIGN.md "Tabulated kernels" for the
// accuracy-vs-spacing table). Requires WithClusterLists; composes with
// WithMixedPrecision (float32 tabulated kernel) and WithPME (the table
// is built after the Ewald swap). Tabulated trajectories are bitwise
// reproducible for a fixed configuration but numerically distinct from
// analytic ones, so checkpoints record the mode and services refuse to
// resume across a change.
func WithTabulatedKernels(spacing float64) Option {
	return func(o *engineOptions) error {
		if spacing < 0 || spacing != spacing {
			return fmt.Errorf("gonamd: table spacing %g Å² must be ≥ 0 (0 = default resolution)", spacing)
		}
		o.tabulated = true
		o.tableSpacing = spacing
		return nil
	}
}

// WithPME enables smooth particle-mesh Ewald full electrostatics: erfc
// real space inside the cutoff plus a reciprocal mesh sum on a grid of
// at most gridSpacing Å per point, evaluated once every mtsPeriod steps
// as an impulse (1 = every step). beta is the Ewald splitting parameter
// in Å⁻¹; pass 0 to choose it from the cutoff (3.12/cutoff, which makes
// the real-space term negligible at the cutoff).
func WithPME(gridSpacing, beta float64, mtsPeriod int) Option {
	return func(o *engineOptions) error {
		if gridSpacing <= 0 {
			return fmt.Errorf("gonamd: PME grid spacing %g Å must be positive", gridSpacing)
		}
		if beta < 0 {
			return fmt.Errorf("gonamd: PME beta %g Å⁻¹ must be ≥ 0 (0 = auto)", beta)
		}
		if mtsPeriod < 1 {
			return fmt.Errorf("gonamd: PME MTS period %d must be ≥ 1", mtsPeriod)
		}
		o.pmeSet = true
		o.pmeGrid = gridSpacing
		o.pmeBeta = beta
		o.pmeMTS = mtsPeriod
		return nil
	}
}

// WithTrace attaches a Projections-style trace log: every step then
// emits per-phase execution records and a step marker, analyzable with
// AnalyzeTrace or cmd/projections. The instrumentation adds no heap
// allocations to the steady-state step.
func WithTrace(l *TraceLog) Option {
	return func(o *engineOptions) error {
		o.trace = l
		return nil
	}
}

// WithMetrics attaches always-on FTDC telemetry sampled on the given
// interval: the engine publishes its metric vector (step count,
// per-phase busy seconds, rebuild count, load imbalance) into a
// lock-free slot array after every step, and a background sampler
// goroutine snapshots it into a ring buffer every interval. The step
// path stays allocation-free; the sampler costs O(fields) per tick.
// Retrieve the recorder with Sequential.Metrics / Parallel.Metrics to
// subscribe, read history, or attach an on-disk sink. An interval of 0
// disables the background sampler (call Recorder.SampleNow manually);
// negative intervals are rejected. Composes with WithTrace: with a
// trace attached the phase times feed both; without one a bounded
// timing-only accumulator is installed.
func WithMetrics(interval time.Duration) Option {
	return func(o *engineOptions) error {
		if interval < 0 {
			return fmt.Errorf("gonamd: metrics interval %s must be ≥ 0 (0 = manual sampling)", interval)
		}
		o.metrics = ftdc.NewEngineRecorder(interval)
		return nil
	}
}

// WithMetricsRecorder attaches a caller-constructed telemetry recorder
// (see NewMetricsRecorder) — the variant services use so they keep the
// handle for sampling, streaming, and shutdown. Nil is rejected.
func WithMetricsRecorder(rec *MetricsRecorder) Option {
	return func(o *engineOptions) error {
		if rec == nil {
			return fmt.Errorf("gonamd: WithMetricsRecorder requires a non-nil recorder (use WithMetrics to construct one)")
		}
		o.metrics = rec
		return nil
	}
}

// WithThermostat applies the thermostat after every step (NVT dynamics).
func WithThermostat(th Thermostat) Option {
	return func(o *engineOptions) error {
		o.thermostat = th
		return nil
	}
}

// WithRebalanceEvery sets how many steps run between the parallel
// engine's measurement-based load-balancing passes (0 disables automatic
// rebalancing; call Rebalance manually). Parallel engine only.
func WithRebalanceEvery(steps int) Option {
	return func(o *engineOptions) error {
		if o.kind != kindParallel {
			return fmt.Errorf("gonamd: WithRebalanceEvery applies only to the parallel engine")
		}
		if steps < 0 {
			return fmt.Errorf("gonamd: rebalance interval %d must be ≥ 0", steps)
		}
		o.rebalanceEvery = steps
		o.rebalanceEverySet = true
		return nil
	}
}

// WithLoadBalancer selects the parallel engine's load-balancing
// strategy by registry name (see LBStrategyNames: "greedy+refine",
// "refine-only", "hierarchical", "diffusion", "none"). The strategy
// decides how nonbonded tasks are reassigned to workers on each
// measurement-based rebalancing pass (see WithRebalanceEvery). An
// unknown name fails construction with an *UnknownLBStrategyError
// listing the valid names. Parallel engine only.
func WithLoadBalancer(name string) Option {
	return func(o *engineOptions) error {
		if o.kind != kindParallel {
			return fmt.Errorf("gonamd: WithLoadBalancer applies only to the parallel engine")
		}
		s, err := ldb.Lookup(name)
		if err != nil {
			return err
		}
		o.lb = s
		return nil
	}
}

// WithHBondConstraints builds SHAKE/RATTLE constraints for every bond
// involving hydrogen, fixed at the force-field equilibrium length, and
// attaches them to the engine (retrieve with Sequential.Constraints and
// drive with StepConstrained). Sequential engine only, and incompatible
// with WithPME: both reshape the timestep structure, and the impulse-MTS
// PME step has no constraint projection.
func WithHBondConstraints() Option {
	return func(o *engineOptions) error {
		if o.kind != kindSequential {
			return fmt.Errorf("gonamd: WithHBondConstraints applies only to the sequential engine")
		}
		o.hbond = true
		return nil
	}
}

// validate enforces the cross-option constraints once all options ran.
func (o *engineOptions) validate() error {
	if o.hbond && o.pmeSet {
		return fmt.Errorf("gonamd: WithHBondConstraints and WithPME cannot be combined: the impulse-MTS PME step has no SHAKE/RATTLE projection")
	}
	if o.clusterM > 0 {
		if o.pairlistSkin > 0 {
			return fmt.Errorf("gonamd: WithClusterLists and WithPairlist cannot be combined: each selects a different nonbonded evaluation strategy")
		}
		if o.blockSkin > 0 {
			return fmt.Errorf("gonamd: WithClusterLists and WithBlockLists cannot be combined: each selects a different nonbonded evaluation strategy")
		}
	} else if o.mixedPrecision {
		return fmt.Errorf("gonamd: WithMixedPrecision requires WithClusterLists: only the cluster kernels have a float32 fast path")
	} else if o.clusterSkin > 0 {
		return fmt.Errorf("gonamd: WithClusterSkin requires WithClusterLists: the skin belongs to the cluster pair list")
	} else if o.tabulated {
		return fmt.Errorf("gonamd: WithTabulatedKernels requires WithClusterLists: the tabulated kernels only exist in cluster form")
	}
	return nil
}

// NewSequential creates the single-threaded reference engine, configured
// by the options (WithPairlist, WithPME, WithTrace, WithThermostat,
// WithHBondConstraints).
func NewSequential(sys *System, ff *ForceField, st *State, opts ...Option) (*Sequential, error) {
	o := engineOptions{kind: kindSequential}
	for _, opt := range opts {
		if err := opt(&o); err != nil {
			return nil, err
		}
	}
	if err := o.validate(); err != nil {
		return nil, err
	}
	e, err := seq.New(sys, ff, st)
	if err != nil {
		return nil, err
	}
	if o.thermostat != nil {
		e.Thermo = o.thermostat
	}
	if o.pairlistSkin > 0 {
		seq.EnablePairlist(e, o.pairlistSkin)
	}
	if o.clusterM > 0 {
		if err := e.EnableClusterLists(o.clusterM, o.clusterN, o.clusterSkin, o.mixedPrecision); err != nil {
			return nil, err
		}
	}
	if o.pmeSet {
		if err := seq.EnableFullElectrostatics(e, o.pmeGrid, o.betaOrAuto(ff), o.pmeMTS); err != nil {
			return nil, err
		}
	}
	// After any Ewald swap: the table folds the active electrostatics.
	if o.tabulated {
		if err := e.EnableTabulatedKernels(o.tableSpacing); err != nil {
			return nil, err
		}
	}
	if o.hbond {
		c, err := NewHBondConstraints(sys, ff)
		if err != nil {
			return nil, err
		}
		e.SetConstraints(c)
	}
	if o.trace != nil {
		e.SetTrace(o.trace)
	}
	if o.metrics != nil {
		e.SetMetrics(o.metrics)
	}
	return e, nil
}

// NewParallel creates the shared-memory parallel engine with the given
// number of goroutine workers (0 = GOMAXPROCS), configured by the
// options (WithBlockLists, WithPME, WithTrace, WithThermostat,
// WithRebalanceEvery).
func NewParallel(sys *System, ff *ForceField, st *State, workers int, opts ...Option) (*Parallel, error) {
	o := engineOptions{kind: kindParallel}
	for _, opt := range opts {
		if err := opt(&o); err != nil {
			return nil, err
		}
	}
	if err := o.validate(); err != nil {
		return nil, err
	}
	e, err := par.New(sys, ff, st, workers)
	if err != nil {
		return nil, err
	}
	if o.thermostat != nil {
		e.Thermo = o.thermostat
	}
	if o.rebalanceEverySet {
		e.RebalanceEvery = o.rebalanceEvery
	}
	if o.lb != nil {
		e.LB = o.lb
	}
	if o.blockSkin > 0 {
		if err := par.EnableBlockLists(e, o.blockSkin); err != nil {
			return nil, err
		}
	}
	if o.clusterM > 0 {
		if err := e.EnableClusterLists(o.clusterM, o.clusterN, o.clusterSkin, o.mixedPrecision); err != nil {
			return nil, err
		}
	}
	if o.pmeSet {
		if err := par.EnableFullElectrostatics(e, o.pmeGrid, o.betaOrAuto(ff), o.pmeMTS); err != nil {
			return nil, err
		}
	}
	// After any Ewald swap: the table folds the active electrostatics.
	if o.tabulated {
		if err := e.EnableTabulatedKernels(o.tableSpacing); err != nil {
			return nil, err
		}
	}
	if o.trace != nil {
		e.SetTrace(o.trace)
	}
	if o.metrics != nil {
		e.SetMetrics(o.metrics)
	}
	return e, nil
}

// betaOrAuto resolves the Ewald splitting parameter: an explicit value
// passes through; 0 derives it from the cutoff so that the real-space
// term is negligible (erfc(3.12) ≈ 1e-5) at the cutoff.
func (o *engineOptions) betaOrAuto(ff *ForceField) float64 {
	if o.pmeBeta > 0 {
		return o.pmeBeta
	}
	return 3.12 / ff.Cutoff
}

// EngineSpec is the wire form of an engine configuration: a
// JSON-serializable description that maps 1:1 onto the functional
// options, so services (the gonamdd job server) can accept engine
// configuration over the network, validate it with the same rules the
// options enforce, and construct the engine with NewEngine. The zero
// value describes a plain sequential NVE engine.
type EngineSpec struct {
	// Engine selects the engine: "sequential"/"seq" (default) or
	// "parallel"/"par".
	Engine string `json:"engine,omitempty"`
	// Workers is the parallel engine's goroutine count (0 = all cores).
	Workers int `json:"workers,omitempty"`
	// PairlistSkin enables the sequential Verlet pair list (Å, 0 = off).
	PairlistSkin float64 `json:"pairlist_skin,omitempty"`
	// BlockListSkin enables the parallel Verlet block lists (Å, 0 = off).
	BlockListSkin float64 `json:"blocklist_skin,omitempty"`
	// ClusterM/ClusterN enable M×N cluster pair lists (0 = off); see
	// WithClusterLists for the geometry constraints.
	ClusterM int `json:"cluster_m,omitempty"`
	ClusterN int `json:"cluster_n,omitempty"`
	// ClusterSkin overrides the cluster-list Verlet skin (Å, 0 = default
	// 1.5); see WithClusterSkin for the size/rebuild trade-off.
	ClusterSkin float64 `json:"cluster_skin,omitempty"`
	// MixedPrecision selects the float32 cluster fast path; requires
	// cluster lists. Changes the numerical trajectory (see DESIGN.md), so
	// services must not resume a checkpoint across a precision-mode change.
	MixedPrecision bool `json:"mixed_precision,omitempty"`
	// Tabulated switches the cluster kernels to r²-indexed interaction
	// tables (see WithTabulatedKernels); requires cluster lists. Like
	// MixedPrecision it changes the numerical trajectory, so the
	// precision mode records it and services refuse to resume a
	// checkpoint across a tabulation change.
	Tabulated bool `json:"tabulated,omitempty"`
	// TableSpacing overrides the table grid spacing (Å², 0 = default
	// resolution); only meaningful with Tabulated.
	TableSpacing float64 `json:"table_spacing,omitempty"`
	// PME enables smooth particle-mesh Ewald full electrostatics.
	PME *PMESpec `json:"pme,omitempty"`
	// RebalanceEvery, when non-nil, overrides the parallel engine's
	// load-balancing interval (0 disables rebalancing; nil keeps the
	// engine default). Measurement-based rebalancing changes the
	// task-to-worker assignment from wall-clock timings, so services
	// that promise bit-identical crash resume pin this to 0.
	RebalanceEvery *int `json:"rebalance_every,omitempty"`
	// LBStrategy names the parallel engine's load-balancing strategy
	// (see LBStrategyNames; "" keeps the engine default,
	// "greedy+refine"). Unknown names are rejected with an error listing
	// the valid ones — services validate this at admission time.
	LBStrategy string `json:"lb_strategy,omitempty"`
	// Thermostat, when non-nil, selects NVT dynamics.
	Thermostat *ThermostatSpec `json:"thermostat,omitempty"`
	// HBondConstraints enables SHAKE/RATTLE on bonds to hydrogen
	// (sequential engine only, incompatible with PME).
	HBondConstraints bool `json:"hbond_constraints,omitempty"`
}

// PMESpec is the wire form of WithPME.
type PMESpec struct {
	GridSpacing float64 `json:"grid_spacing"`         // Å per mesh point, ≤
	Beta        float64 `json:"beta,omitempty"`       // Å⁻¹, 0 = auto from cutoff
	MTSPeriod   int     `json:"mts_period,omitempty"` // impulse-MTS period, 0 = 1
}

// ThermostatSpec is the wire form of WithThermostat.
type ThermostatSpec struct {
	Kind        string  `json:"kind"`               // "rescale", "berendsen", "langevin"
	Temperature float64 `json:"temperature"`        // target, K
	Interval    int     `json:"interval,omitempty"` // rescale: steps between rescales (default 10)
	Tau         float64 `json:"tau,omitempty"`      // berendsen: coupling constant, fs (default 100)
	Gamma       float64 `json:"gamma,omitempty"`    // langevin: friction, 1/fs (default 0.005)
	Seed        uint64  `json:"seed,omitempty"`     // langevin: noise stream seed
}

// New constructs the thermostat the spec describes.
func (t *ThermostatSpec) New() (Thermostat, error) {
	if !(t.Temperature > 0) {
		return nil, fmt.Errorf("gonamd: thermostat temperature %g K must be positive", t.Temperature)
	}
	switch t.Kind {
	case "rescale":
		iv := t.Interval
		if iv == 0 {
			iv = 10
		}
		return &Rescale{Target: t.Temperature, Interval: iv}, nil
	case "berendsen":
		tau := t.Tau
		if tau == 0 {
			tau = 100
		}
		return &Berendsen{Target: t.Temperature, Tau: tau}, nil
	case "langevin":
		gamma := t.Gamma
		if gamma == 0 {
			gamma = 0.005
		}
		return &Langevin{Target: t.Temperature, Gamma: gamma, Seed: t.Seed}, nil
	default:
		return nil, fmt.Errorf("gonamd: unknown thermostat kind %q (want rescale, berendsen, or langevin)", t.Kind)
	}
}

// PrecisionMode names the numerical mode the spec's trajectory runs in:
// "fp64" for full float64 evaluation, "fp32-mixed" for the
// mixed-precision cluster fast path, with a "-tab" suffix when the
// tabulated kernels replace the analytic interaction. Trajectories are
// bitwise reproducible within a mode but differ across modes, so
// checkpoints record this and services refuse to resume across a mode
// change.
func (s *EngineSpec) PrecisionMode() string {
	mode := "fp64"
	if s.MixedPrecision {
		mode = "fp32-mixed"
	}
	if s.Tabulated {
		mode += "-tab"
	}
	return mode
}

// UsesLists reports whether the spec enables any neighbor-list mode
// (Verlet pair or block lists, or cluster lists). List-mode engines
// carry list history — forces depend on where the current list was
// built, not just on the current positions — so services that promise
// bit-identical crash resume rebase such engines on every checkpoint
// (Invalidate + ResetLists; see the job server).
func (s *EngineSpec) UsesLists() bool {
	return s.PairlistSkin > 0 || s.BlockListSkin > 0 || s.ClusterM > 0
}

// Parallel reports whether the spec selects the parallel engine.
func (s *EngineSpec) Parallel() (bool, error) {
	switch s.Engine {
	case "", "seq", "sequential":
		return false, nil
	case "par", "parallel":
		return true, nil
	default:
		return false, fmt.Errorf("gonamd: unknown engine %q (want sequential or parallel)", s.Engine)
	}
}

// options lowers the spec to functional options, with th (possibly nil)
// as the already-constructed thermostat.
func (s *EngineSpec) options(th Thermostat) []Option {
	var opts []Option
	if th != nil {
		opts = append(opts, WithThermostat(th))
	}
	if s.PairlistSkin > 0 {
		opts = append(opts, WithPairlist(s.PairlistSkin))
	}
	if s.BlockListSkin > 0 {
		opts = append(opts, WithBlockLists(s.BlockListSkin))
	}
	if s.PME != nil {
		mts := s.PME.MTSPeriod
		if mts == 0 {
			mts = 1
		}
		opts = append(opts, WithPME(s.PME.GridSpacing, s.PME.Beta, mts))
	}
	if s.ClusterM > 0 || s.ClusterN > 0 {
		opts = append(opts, WithClusterLists(s.ClusterM, s.ClusterN))
	}
	if s.ClusterSkin > 0 {
		opts = append(opts, WithClusterSkin(s.ClusterSkin))
	}
	if s.MixedPrecision {
		opts = append(opts, WithMixedPrecision())
	}
	if s.Tabulated {
		opts = append(opts, WithTabulatedKernels(s.TableSpacing))
	}
	if s.RebalanceEvery != nil {
		opts = append(opts, WithRebalanceEvery(*s.RebalanceEvery))
	}
	if s.LBStrategy != "" {
		opts = append(opts, WithLoadBalancer(s.LBStrategy))
	}
	if s.HBondConstraints {
		opts = append(opts, WithHBondConstraints())
	}
	return opts
}

// NewEngine constructs the engine the spec describes over the given
// system, with every option validated by the same construction rules
// NewSequential and NewParallel enforce. The returned Thermostat is the
// instance the engine applies (nil for NVE) — exposed so callers that
// checkpoint, like the job server, can snapshot and restore a Langevin
// noise stream.
func (s *EngineSpec) NewEngine(sys *System, ff *ForceField, st *State) (Engine, Thermostat, error) {
	par, err := s.Parallel()
	if err != nil {
		return nil, nil, err
	}
	var th Thermostat
	if s.Thermostat != nil {
		if th, err = s.Thermostat.New(); err != nil {
			return nil, nil, err
		}
	}
	var eng Engine
	if par {
		eng, err = NewParallel(sys, ff, st, s.Workers, s.options(th)...)
	} else {
		eng, err = NewSequential(sys, ff, st, s.options(th)...)
	}
	if err != nil {
		return nil, nil, err
	}
	return eng, th, nil
}
