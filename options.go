package gonamd

import (
	"fmt"

	"gonamd/internal/par"
	"gonamd/internal/seq"
	"gonamd/internal/thermo"
	"gonamd/internal/trace"
)

// Engine is the interface both real engines satisfy: construct one with
// NewSequential or NewParallel and drive it without caring which. The
// cluster simulation (NewClusterSim) models machines rather than
// advancing real atoms and stays outside this interface.
type Engine interface {
	// Step advances one velocity-Verlet step of dt femtoseconds.
	Step(dt float64)
	// Run advances n steps and returns the final energies.
	Run(n int, dt float64) Energies
	// ComputeForces evaluates forces at the current positions.
	ComputeForces() Energies
	// Energies returns the last evaluation's energies plus current kinetic.
	Energies() Energies
	// Forces returns the engine-owned force array from the last evaluation.
	Forces() []V3
	// Invalidate marks cached forces stale after external position edits.
	Invalidate()
	// Kinetic returns the kinetic energy in kcal/mol.
	Kinetic() float64
	// Temperature returns the instantaneous temperature in K.
	Temperature() float64
	// System returns the engine's topology.
	System() *System
	// State returns the engine's mutable positions and velocities.
	State() *State
}

var (
	_ Engine = (*Sequential)(nil)
	_ Engine = (*Parallel)(nil)
)

// engineKind discriminates which constructor is applying the options, so
// engine-specific options can reject the wrong engine by name.
type engineKind uint8

const (
	kindSequential engineKind = iota
	kindParallel
)

func (k engineKind) String() string {
	if k == kindSequential {
		return "sequential"
	}
	return "parallel"
}

// engineOptions accumulates the configuration the options record. All
// validation that spans options (or needs the force field) happens after
// every option has run, so option order never matters.
type engineOptions struct {
	kind engineKind

	pairlistSkin float64 // seq: Verlet pair list skin, 0 = off
	blockSkin    float64 // par: Verlet block list skin, 0 = off

	pmeSet  bool
	pmeGrid float64
	pmeBeta float64 // 0 = auto (3.12/cutoff, erfc(3.12) ≈ 1e-5 at the cutoff)
	pmeMTS  int

	trace      *trace.Log
	thermostat thermo.Thermostat

	rebalanceEvery    int
	rebalanceEverySet bool

	hbond bool
}

// Option configures an engine at construction time. Options are applied
// by NewSequential and NewParallel in a fixed internal order, so the
// order they are passed in never changes the result. Engine-specific
// options (WithPairlist, WithBlockLists, ...) return a construction
// error when handed to the other engine.
type Option func(*engineOptions) error

// WithPairlist switches the sequential engine's nonbonded path to a
// Verlet pair list with the given skin in Å (rebuilt only when an atom
// has drifted more than skin/2). Sequential engine only; skin must be
// positive.
func WithPairlist(skin float64) Option {
	return func(o *engineOptions) error {
		if o.kind != kindSequential {
			return fmt.Errorf("gonamd: WithPairlist applies only to the sequential engine (use WithBlockLists for the parallel engine)")
		}
		if skin <= 0 {
			return fmt.Errorf("gonamd: pairlist skin %g Å must be positive", skin)
		}
		o.pairlistSkin = skin
		return nil
	}
}

// WithBlockLists caches a Verlet pair list with the given skin (Å) per
// nonbonded task of the parallel engine, rebuilt only when atoms drift
// beyond skin/2. Parallel engine only; skin must be positive.
func WithBlockLists(skin float64) Option {
	return func(o *engineOptions) error {
		if o.kind != kindParallel {
			return fmt.Errorf("gonamd: WithBlockLists applies only to the parallel engine (use WithPairlist for the sequential engine)")
		}
		if skin <= 0 {
			return fmt.Errorf("gonamd: block list skin %g Å must be positive", skin)
		}
		o.blockSkin = skin
		return nil
	}
}

// WithPME enables smooth particle-mesh Ewald full electrostatics: erfc
// real space inside the cutoff plus a reciprocal mesh sum on a grid of
// at most gridSpacing Å per point, evaluated once every mtsPeriod steps
// as an impulse (1 = every step). beta is the Ewald splitting parameter
// in Å⁻¹; pass 0 to choose it from the cutoff (3.12/cutoff, which makes
// the real-space term negligible at the cutoff).
func WithPME(gridSpacing, beta float64, mtsPeriod int) Option {
	return func(o *engineOptions) error {
		if gridSpacing <= 0 {
			return fmt.Errorf("gonamd: PME grid spacing %g Å must be positive", gridSpacing)
		}
		if beta < 0 {
			return fmt.Errorf("gonamd: PME beta %g Å⁻¹ must be ≥ 0 (0 = auto)", beta)
		}
		if mtsPeriod < 1 {
			return fmt.Errorf("gonamd: PME MTS period %d must be ≥ 1", mtsPeriod)
		}
		o.pmeSet = true
		o.pmeGrid = gridSpacing
		o.pmeBeta = beta
		o.pmeMTS = mtsPeriod
		return nil
	}
}

// WithTrace attaches a Projections-style trace log: every step then
// emits per-phase execution records and a step marker, analyzable with
// AnalyzeTrace or cmd/projections. The instrumentation adds no heap
// allocations to the steady-state step.
func WithTrace(l *TraceLog) Option {
	return func(o *engineOptions) error {
		o.trace = l
		return nil
	}
}

// WithThermostat applies the thermostat after every step (NVT dynamics).
func WithThermostat(th Thermostat) Option {
	return func(o *engineOptions) error {
		o.thermostat = th
		return nil
	}
}

// WithRebalanceEvery sets how many steps run between the parallel
// engine's measurement-based load-balancing passes (0 disables automatic
// rebalancing; call Rebalance manually). Parallel engine only.
func WithRebalanceEvery(steps int) Option {
	return func(o *engineOptions) error {
		if o.kind != kindParallel {
			return fmt.Errorf("gonamd: WithRebalanceEvery applies only to the parallel engine")
		}
		if steps < 0 {
			return fmt.Errorf("gonamd: rebalance interval %d must be ≥ 0", steps)
		}
		o.rebalanceEvery = steps
		o.rebalanceEverySet = true
		return nil
	}
}

// WithHBondConstraints builds SHAKE/RATTLE constraints for every bond
// involving hydrogen, fixed at the force-field equilibrium length, and
// attaches them to the engine (retrieve with Sequential.Constraints and
// drive with StepConstrained). Sequential engine only, and incompatible
// with WithPME: both reshape the timestep structure, and the impulse-MTS
// PME step has no constraint projection.
func WithHBondConstraints() Option {
	return func(o *engineOptions) error {
		if o.kind != kindSequential {
			return fmt.Errorf("gonamd: WithHBondConstraints applies only to the sequential engine")
		}
		o.hbond = true
		return nil
	}
}

// validate enforces the cross-option constraints once all options ran.
func (o *engineOptions) validate() error {
	if o.hbond && o.pmeSet {
		return fmt.Errorf("gonamd: WithHBondConstraints and WithPME cannot be combined: the impulse-MTS PME step has no SHAKE/RATTLE projection")
	}
	return nil
}

// NewSequential creates the single-threaded reference engine, configured
// by the options (WithPairlist, WithPME, WithTrace, WithThermostat,
// WithHBondConstraints).
func NewSequential(sys *System, ff *ForceField, st *State, opts ...Option) (*Sequential, error) {
	o := engineOptions{kind: kindSequential}
	for _, opt := range opts {
		if err := opt(&o); err != nil {
			return nil, err
		}
	}
	if err := o.validate(); err != nil {
		return nil, err
	}
	e, err := seq.New(sys, ff, st)
	if err != nil {
		return nil, err
	}
	if o.thermostat != nil {
		e.Thermo = o.thermostat
	}
	if o.pairlistSkin > 0 {
		e.EnablePairlist(o.pairlistSkin)
	}
	if o.pmeSet {
		if err := e.EnableFullElectrostatics(o.pmeGrid, o.betaOrAuto(ff), o.pmeMTS); err != nil {
			return nil, err
		}
	}
	if o.hbond {
		c, err := NewHBondConstraints(sys, ff)
		if err != nil {
			return nil, err
		}
		e.SetConstraints(c)
	}
	if o.trace != nil {
		e.SetTrace(o.trace)
	}
	return e, nil
}

// NewParallel creates the shared-memory parallel engine with the given
// number of goroutine workers (0 = GOMAXPROCS), configured by the
// options (WithBlockLists, WithPME, WithTrace, WithThermostat,
// WithRebalanceEvery).
func NewParallel(sys *System, ff *ForceField, st *State, workers int, opts ...Option) (*Parallel, error) {
	o := engineOptions{kind: kindParallel}
	for _, opt := range opts {
		if err := opt(&o); err != nil {
			return nil, err
		}
	}
	if err := o.validate(); err != nil {
		return nil, err
	}
	e, err := par.New(sys, ff, st, workers)
	if err != nil {
		return nil, err
	}
	if o.thermostat != nil {
		e.Thermo = o.thermostat
	}
	if o.rebalanceEverySet {
		e.RebalanceEvery = o.rebalanceEvery
	}
	if o.blockSkin > 0 {
		if err := e.EnableBlockLists(o.blockSkin); err != nil {
			return nil, err
		}
	}
	if o.pmeSet {
		if err := e.EnableFullElectrostatics(o.pmeGrid, o.betaOrAuto(ff), o.pmeMTS); err != nil {
			return nil, err
		}
	}
	if o.trace != nil {
		e.SetTrace(o.trace)
	}
	return e, nil
}

// betaOrAuto resolves the Ewald splitting parameter: an explicit value
// passes through; 0 derives it from the cutoff so that the real-space
// term is negligible (erfc(3.12) ≈ 1e-5) at the cutoff.
func (o *engineOptions) betaOrAuto(ff *ForceField) float64 {
	if o.pmeBeta > 0 {
		return o.pmeBeta
	}
	return 3.12 / ff.Cutoff
}
