package gonamd_test

import (
	"math"
	"reflect"
	"testing"

	"gonamd"
)

// This file is the differential battery for the tabulated cluster
// kernels (WithTabulatedKernels): per-atom accuracy against the
// analytic kernels at the default table spacing, NVE conservation,
// within-mode bitwise reproducibility across worker counts, warm-rebuild
// bitwise identity, and the engine-spec / scheduler wiring. The
// determinism contract matches the rest of the cluster pipeline
// (DESIGN.md, "Tabulated kernels"): bitwise within a fixed
// configuration, documented accuracy envelope across modes.

// tabOpts is the canonical tabulated-engine configuration used across
// the battery: default table resolution on 8×8 cluster lists.
func tabOpts(extra ...gonamd.Option) []gonamd.Option {
	return append([]gonamd.Option{
		gonamd.WithClusterLists(8, 8), gonamd.WithClusterSkin(0.5),
		gonamd.WithTabulatedKernels(0),
	}, extra...)
}

// TestClusterTabForceAccuracyApoA1: on the ApoA-I benchmark box, the
// tabulated kernel's per-atom forces must track the analytic float64
// cluster kernel within 1e-5 of the configuration's force scale at the
// default table spacing — the production half of the accuracy envelope
// (the spacing → error sweep lives in internal/forcefield's
// TestInteractionTableAccuracySweep).
func TestClusterTabForceAccuracyApoA1(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the ApoA-I box")
	}
	sys, st, err := gonamd.BuildSystem(gonamd.ApoA1Spec())
	if err != nil {
		t.Fatal(err)
	}
	ff := gonamd.StandardForceField(9.0)
	// Relax the as-built contacts first: the synthetic structure starts
	// on near-singular r⁻¹² clashes deep inside the repulsive wall,
	// where the table's h²/x² interpolation error peaks far above the
	// envelope this test pins for thermally accessible separations.
	m, err := gonamd.NewSequential(sys, ff, st, gonamd.WithClusterLists(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	m.Minimize(60, 0.2)

	eval := func(tab bool) ([]gonamd.V3, gonamd.Energies) {
		opts := []gonamd.Option{gonamd.WithClusterLists(4, 4)}
		if tab {
			opts = append(opts, gonamd.WithTabulatedKernels(0))
		}
		e, err := gonamd.NewSequential(sys, ff, st.Clone(), opts...)
		if err != nil {
			t.Fatal(err)
		}
		en := e.ComputeForces()
		return e.Forces(), en
	}
	anaF, enA := eval(false)
	tabF, enT := eval(true)

	// Relative to the force scale of the configuration: per-atom
	// absolute errors on near-cancelling small forces are meaningless.
	scale := 0.0
	for i := range anaF {
		if n := anaF[i].Norm(); n > scale {
			scale = n
		}
	}
	worst := 0.0
	for i := range anaF {
		if d := tabF[i].Sub(anaF[i]).Norm() / scale; d > worst {
			worst = d
		}
	}
	if worst > 1e-5 {
		t.Errorf("worst per-atom force error %.3g of the force scale exceeds the 1e-5 bound", worst)
	}
	for _, e := range []struct {
		name     string
		tab, ana float64
	}{{"vdw", enT.VdW, enA.VdW}, {"elec", enT.Elec, enA.Elec}} {
		if d := math.Abs(e.tab-e.ana) / (1 + math.Abs(e.ana)); d > 1e-5 {
			t.Errorf("%s energy relative error %.3g exceeds 1e-5 (%.6f vs %.6f)", e.name, d, e.tab, e.ana)
		}
	}
}

// TestClusterTabNVEDrift: 500 steps of NVE dynamics under the tabulated
// kernels must conserve total energy within the same pinned bound the
// mixed-precision and PME drift tests use. This is the property the
// Hermite construction buys: the interpolated force is the exact
// derivative of the interpolated energy, so the tabulated field is
// conservative by construction and interpolation error cannot pump
// energy.
func TestClusterTabNVEDrift(t *testing.T) {
	if testing.Short() {
		t.Skip("long NVE run")
	}
	sys, st, err := gonamd.BuildSystem(gonamd.WaterBoxSpec(12, 11))
	if err != nil {
		t.Fatal(err)
	}
	ff := gonamd.StandardForceField(5.5)
	m, err := gonamd.NewSequential(sys, ff, st)
	if err != nil {
		t.Fatal(err)
	}
	m.Minimize(200, 0.2)

	e, err := gonamd.NewSequential(sys, ff, st,
		gonamd.WithClusterLists(4, 4), gonamd.WithTabulatedKernels(0))
	if err != nil {
		t.Fatal(err)
	}
	const steps, dt = 500, 0.5
	e0 := e.Energies().Total()
	kin := e.Energies().Kinetic
	worst := 0.0
	for s := 0; s < steps; s++ {
		e.Step(dt)
		if d := math.Abs(e.Energies().Total() - e0); d > worst {
			worst = d
		}
	}
	if e.ClusterRebuilds() < 2 {
		t.Fatalf("run exercised %d list rebuilds, want ≥ 2", e.ClusterRebuilds())
	}
	if bound := 0.02 * kin; worst > bound {
		t.Fatalf("NVE drift %.4f kcal/mol exceeds bound %.4f (kinetic %.2f)", worst, bound, kin)
	}
}

// TestClusterTabReproducible: tabulated trajectories must be bitwise
// reproducible run-to-run for a fixed configuration — sequential and
// parallel at 1/2/4/8 workers, in both float64 and fp32-mixed table
// modes — and every configuration must agree with the sequential
// tabulated trajectory within reduction tolerance (the reduction order
// differs across configurations, so cross-config identity is a
// closeness statement, exactly as for the analytic cluster kernels).
func TestClusterTabReproducible(t *testing.T) {
	sys, st, ff := diffSystem(t)
	const steps, dt = 10, 0.5

	run := func(workers int, mixed bool) *gonamd.State {
		s := st.Clone()
		opts := tabOpts()
		if mixed {
			opts = append(opts, gonamd.WithMixedPrecision())
		}
		var eng gonamd.Engine
		var err error
		if workers == 0 {
			eng, err = gonamd.NewSequential(sys, ff, s, opts...)
		} else {
			eng, err = gonamd.NewParallel(sys, ff, s, workers, opts...)
		}
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < steps; i++ {
			eng.Step(dt)
		}
		return s
	}

	for _, workers := range []int{0, 1, 2, 4, 8} {
		a, b := run(workers, false), run(workers, false)
		if !reflect.DeepEqual(a.Pos, b.Pos) || !reflect.DeepEqual(a.Vel, b.Vel) {
			t.Errorf("workers=%d: tabulated trajectory not bitwise reproducible", workers)
		}
	}
	for _, workers := range []int{0, 4} {
		a, b := run(workers, true), run(workers, true)
		if !reflect.DeepEqual(a.Pos, b.Pos) || !reflect.DeepEqual(a.Vel, b.Vel) {
			t.Errorf("workers=%d: fp32-mixed tabulated trajectory not bitwise reproducible", workers)
		}
	}

	seqTab := run(0, false)
	compare := func(name string, pos []gonamd.V3, tol float64) {
		t.Helper()
		worst := 0.0
		for i := range pos {
			if d := pos[i].Sub(seqTab.Pos[i]).Norm(); d > worst {
				worst = d
			}
		}
		if worst > tol {
			t.Errorf("%s drifted %v Å from the sequential tabulated trajectory (tol %v)", name, worst, tol)
		}
	}
	for _, workers := range []int{1, 2, 4, 8} {
		compare("parallel tab", run(workers, false).Pos, 1e-6)
	}

	// Cross-mode half of the envelope: the tabulated trajectory tracks
	// the analytic cluster trajectory closely over a short run (per-atom
	// force error ~1e-6 of scale compounds slowly), but not bitwise.
	anaSt := st.Clone()
	ana, err := gonamd.NewSequential(sys, ff, anaSt,
		gonamd.WithClusterLists(8, 8), gonamd.WithClusterSkin(0.5))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < steps; i++ {
		ana.Step(dt)
	}
	worst := 0.0
	for i := range seqTab.Pos {
		if d := seqTab.Pos[i].Sub(anaSt.Pos[i]).Norm(); d > worst {
			worst = d
		}
	}
	if worst > 1e-3 {
		t.Errorf("tabulated trajectory drifted %v Å from analytic in %d steps", worst, steps)
	}
}

// TestClusterTabRebuildVsReplay: the warm-rebuild bitwise guarantee of
// TestClusterRebuildVsReplay must survive table mode — the interaction
// table is built once at construction and shared read-only, so a warm
// engine's rebuild must continue bitwise identically to a fresh engine
// built at the same positions.
func TestClusterTabRebuildVsReplay(t *testing.T) {
	sys, st, ff := diffSystem(t)
	const dt = 0.5

	type clusterEngine interface {
		gonamd.Engine
		ClusterRebuilds() int
	}

	run := func(name string, mk func(s *gonamd.State) clusterEngine) {
		aSt := st.Clone()
		warm := mk(aSt)
		warm.ComputeForces()
		if warm.ClusterRebuilds() != 1 {
			t.Fatalf("%s: expected first evaluation to build, got %d builds", name, warm.ClusterRebuilds())
		}
		for k := 0; k < 3; k++ {
			for i := range aSt.Pos {
				aSt.Pos[i] = aSt.Pos[i].Add(gonamd.V3{X: 1e-3, Y: -1e-3, Z: 1e-3})
			}
			warm.Invalidate()
			warm.ComputeForces()
		}
		if warm.ClusterRebuilds() != 1 {
			t.Fatalf("%s: jiggles were meant to replay, got %d builds", name, warm.ClusterRebuilds())
		}
		aSt.Pos[0] = aSt.Pos[0].Add(gonamd.V3{X: 2, Y: 0, Z: 0})
		warm.Invalidate()
		warm.ComputeForces()
		if warm.ClusterRebuilds() != 2 {
			t.Fatalf("%s: kick was meant to rebuild, got %d builds", name, warm.ClusterRebuilds())
		}
		warmF := make([]gonamd.V3, len(warm.Forces()))
		copy(warmF, warm.Forces())

		bSt := aSt.Clone()
		fresh := mk(bSt)
		fresh.ComputeForces()
		if !reflect.DeepEqual(warmF, fresh.Forces()) {
			t.Errorf("%s: warm rebuild not bitwise identical to fresh build", name)
		}
		for i := 0; i < 4; i++ {
			warm.Step(dt)
			fresh.Step(dt)
		}
		if !reflect.DeepEqual(aSt.Pos, bSt.Pos) || !reflect.DeepEqual(aSt.Vel, bSt.Vel) {
			t.Errorf("%s: trajectories diverged bitwise after the shared rebuild", name)
		}
	}

	run("seq", func(s *gonamd.State) clusterEngine {
		e, err := gonamd.NewSequential(sys, ff, s,
			gonamd.WithClusterLists(4, 4), gonamd.WithTabulatedKernels(0))
		if err != nil {
			t.Fatal(err)
		}
		return e
	})

	// Parallel at one worker: the task→worker assignment is trivially
	// identical between the warm and fresh engines (see
	// TestClusterRebuildVsReplay for why higher counts are excluded).
	run("par", func(s *gonamd.State) clusterEngine {
		e, err := gonamd.NewParallel(sys, ff, s, 1,
			gonamd.WithClusterLists(4, 4), gonamd.WithTabulatedKernels(0),
			gonamd.WithRebalanceEvery(0))
		if err != nil {
			t.Fatal(err)
		}
		return e
	})
}
