package gonamd_test

import (
	"bytes"
	"strings"
	"testing"

	"gonamd"
)

// TestProjectionsApoA1DES is the subsystem's acceptance run: a traced
// cluster simulation of an ApoA-I-shaped system on the paper's 7×7×5
// patch grid across 16 PEs, whose projections summary must report
// per-category totals summing exactly (bitwise) to the recorded busy
// time, alongside idle/overhead percentages and a populated grainsize
// histogram.
func TestProjectionsApoA1DES(t *testing.T) {
	// ApoA-I's box and patch grid with a reduced atom count: the
	// decomposition (245 patches, 16 PEs) matches the paper run while the
	// workload build stays test-sized.
	spec := gonamd.ApoA1Spec()
	spec.TargetAtoms = 9000
	spec.ProteinChains = 2
	spec.ChainResidues = 60
	spec.LipidCount = 24
	spec.Temperature = 0
	sys, st, err := gonamd.BuildSystem(spec)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := gonamd.NewGridDims(sys, spec.PatchDims, gonamd.Cutoff)
	if err != nil {
		t.Fatal(err)
	}
	if g := grid.Dim; g != [3]int{7, 7, 5} {
		t.Fatalf("grid dims %v, want the paper's 7×7×5", g)
	}
	w, err := gonamd.BuildWorkload(spec.Name, sys, st, grid, gonamd.Cutoff, gonamd.Cutoff+1.5)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := gonamd.NewClusterSim(w, gonamd.ClusterConfig{
		PEs: 16, Model: gonamd.ASCIRed(), SplitSelf: true, GrainSplit: true,
		SplitBonded: true, MulticastOpt: true, CollectTrace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run()
	if res.Trace == nil || len(res.Trace.Records) == 0 {
		t.Fatal("CollectTrace produced no records")
	}

	rep := gonamd.AnalyzeTrace(res.Trace, gonamd.ProjectionsOptions{PEs: 16})
	if rep.PEs != 16 {
		t.Fatalf("report PEs %d, want 16", rep.PEs)
	}

	// The headline invariant: category totals sum to busy time exactly —
	// bitwise equality, not within tolerance.
	sum := 0.0
	for _, c := range rep.Categories {
		sum += c.Seconds
	}
	if sum != rep.BusySeconds {
		t.Errorf("Σ categories %.17g != busy %.17g", sum, rep.BusySeconds)
	}
	if rep.BusySeconds <= 0 {
		t.Error("no busy time recorded")
	}
	if rep.IdleSeconds < 0 {
		t.Errorf("negative idle %.17g", rep.IdleSeconds)
	}
	if rep.Utilization <= 0 || rep.Utilization > 1 {
		t.Errorf("utilization %.4f outside (0, 1]", rep.Utilization)
	}
	if len(rep.PerPE) != 16 {
		t.Errorf("per-PE rows %d, want 16", len(rep.PerPE))
	}
	if rep.Grainsize == nil || rep.Grainsize.N == 0 {
		t.Fatal("grainsize histogram empty: DES compute executions not classified")
	}
	if rep.Steps == nil || rep.Steps.N == 0 {
		t.Error("no step markers in the DES trace")
	}

	// The rendered summary is what cmd/projections -summary prints; it
	// must carry the category table, the idle/overhead lines, and the
	// grainsize section.
	var buf bytes.Buffer
	rep.WriteText(&buf)
	out := buf.String()
	for _, want := range []string{"category", "idle", "grainsize", "total", "util"} {
		if !strings.Contains(strings.ToLower(out), want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}
