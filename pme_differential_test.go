package gonamd_test

import (
	"math"
	"reflect"
	"testing"

	"gonamd"
)

// pmeParams are the full-electrostatics settings the differential tests
// share: 1 Å mesh spacing, an Ewald β giving erfc(β·rc) ≈ 8e-6 at the
// 7 Å cutoff, and (where noted) a 4-step MTS reciprocal period.
const (
	pmeGridSpacing = 1.0
	pmeBeta        = 0.45
)

// TestPMEDifferentialSeqVsPar: with full electrostatics enabled, the
// sequential and parallel engines must agree — the reciprocal (slow)
// forces bitwise for every worker count, the total forces and energies
// within reduction tolerance.
func TestPMEDifferentialSeqVsPar(t *testing.T) {
	sys, st, ff := diffSystem(t)

	ref, err := gonamd.NewSequential(sys, ff, st.Clone(), gonamd.WithPME(pmeGridSpacing, pmeBeta, 1))
	if err != nil {
		t.Fatal(err)
	}
	refEn := ref.Energies()
	refF := ref.Forces()
	refRecip := ref.RecipForces()

	for _, workers := range []int{1, 2, 4, 8} {
		p, err := gonamd.NewParallel(sys, ff, st.Clone(), workers, gonamd.WithPME(pmeGridSpacing, pmeBeta, 1))
		if err != nil {
			t.Fatal(err)
		}
		en := p.Energies()
		if math.Abs(en.Potential()-refEn.Potential()) > 1e-7*(1+math.Abs(refEn.Potential())) {
			t.Errorf("%d workers: potential %v, sequential %v", workers, en.Potential(), refEn.Potential())
		}
		// The slow reciprocal forces are computed by a fully deterministic
		// decomposition: bitwise identical to the sequential engine's, for
		// any worker count.
		if !reflect.DeepEqual(p.RecipForces(), refRecip) {
			t.Errorf("%d workers: reciprocal forces not bitwise identical to sequential", workers)
		}
		for i, f := range p.Forces() {
			if d := f.Sub(refF[i]).Norm(); d > 1e-7*(1+refF[i].Norm()) {
				t.Fatalf("%d workers: fast force on atom %d off by %v", workers, i, d)
			}
		}
	}
}

// TestPMEDifferentialBitwiseRuns: the parallel PME trajectory is exactly
// reproducible — two runs with the same worker count give bitwise
// identical positions and velocities, including across an MTS cycle.
func TestPMEDifferentialBitwiseRuns(t *testing.T) {
	sys, st, ff := diffSystem(t)
	const steps, dt = 8, 0.5
	for _, workers := range []int{2, 4, 8} {
		run := func() *gonamd.State {
			parSt := st.Clone()
			p, err := gonamd.NewParallel(sys, ff, parSt, workers, gonamd.WithPME(pmeGridSpacing, pmeBeta, 4))
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < steps; i++ {
				p.Step(dt)
			}
			return parSt
		}
		a, b := run(), run()
		if !reflect.DeepEqual(a.Pos, b.Pos) || !reflect.DeepEqual(a.Vel, b.Vel) {
			t.Errorf("%d workers: PME trajectory not bitwise reproducible", workers)
		}
	}
}

// TestPMEDifferentialVsDirectEwald: the engines' decomposed electrostatic
// energy (erfc real space within the cutoff + mesh reciprocal + self +
// exclusion corrections) must match the O(N²·K³) direct Ewald sum with
// the same exclusions applied analytically.
func TestPMEDifferentialVsDirectEwald(t *testing.T) {
	sys, st, ff := diffSystem(t)

	// A finer mesh than the production default: at β = 0.45 a 1 Å grid
	// leaves a few percent of interpolation error; 0.25 Å brings the mesh
	// term within the comparison tolerance below.
	e, err := gonamd.NewSequential(sys, ff, st.Clone(), gonamd.WithPME(0.25, pmeBeta, 1))
	if err != nil {
		t.Fatal(err)
	}
	elec := e.Energies().Elec

	// Reference: direct Ewald over all pairs, then subtract the full
	// min-image Coulomb term of every excluded pair and the scaled-away
	// fraction of every modified pair (Ewald has no exclusion concept; the
	// engines correct for it via pme.ExclusionTerm plus the scaled erfc
	// real-space term).
	q := make([]float64, sys.N())
	for i := range q {
		q[i] = sys.Atoms[i].Charge
	}
	d := &gonamd.EwaldDirect{Beta: pmeBeta, Box: sys.Box, KMax: 14, RealCutoff: sys.Box.X/2 - 1e-9}
	want := d.Energy(st.Pos, q, nil)
	sys.ForEachExcludedPair(func(i, j int32, modified bool) {
		fac := 1.0
		if modified {
			fac = 1 - ff.Scale14Elec
		}
		if fac == 0 {
			return
		}
		r := gonamd.MinImage(st.Pos[i], st.Pos[j], sys.Box).Norm()
		if r == 0 {
			return
		}
		want -= fac * gonamd.Coulomb * q[i] * q[j] / r
	})

	// Residual disagreement: the engine truncates erfc at the 7 Å cutoff
	// while the reference integrates to the half-box, and order-4 B-spline
	// interpolation is inexact even on the fine mesh. Observed ~7e-4
	// relative; the pme package's Madelung tests pin the 1e-4 regime with
	// parameters chosen for accuracy rather than engine defaults.
	if rel := math.Abs(elec-want) / math.Abs(want); rel > 2e-3 {
		t.Fatalf("engine PME electrostatics %.6f vs direct Ewald %.6f (rel err %.2e)", elec, want, rel)
	}
}

// TestPMENVEDriftDifferential: 500 steps of NVE dynamics with full
// electrostatics and a 4-step MTS reciprocal schedule must conserve
// total energy. Drift is sampled at MTS cycle boundaries (where the
// impulse integrator's shadow energy coincides with the reported one)
// and pinned relative to the kinetic energy scale.
func TestPMENVEDriftDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("long NVE run")
	}
	sys, st, err := gonamd.BuildSystem(gonamd.WaterBoxSpec(12, 11))
	if err != nil {
		t.Fatal(err)
	}
	ff := gonamd.StandardForceField(5.5)
	relax, err := gonamd.NewSequential(sys, ff, st)
	if err != nil {
		t.Fatal(err)
	}
	// Relax the synthetic starting structure first: the as-built water box
	// sits on steep repulsive contacts whose relaxation transients dwarf
	// any integrator drift. The minimizer mutates st in place, so the PME
	// engine built over the same state starts from the relaxed structure.
	relax.Minimize(200, 0.2)
	const mts = 4
	e, err := gonamd.NewSequential(sys, ff, st, gonamd.WithPME(0.5, 0.55, mts))
	if err != nil {
		t.Fatal(err)
	}

	const steps, dt = 500, 0.5
	e0 := e.Energies().Total()
	kin := e.Energies().Kinetic
	worst := 0.0
	for s := 1; s <= steps; s++ {
		e.Step(dt)
		if s%mts == 0 {
			if d := math.Abs(e.Energies().Total() - e0); d > worst {
				worst = d
			}
		}
	}
	if e.RecipEvals() == 0 {
		t.Fatal("no reciprocal evaluations recorded")
	}
	// Pinned bound: total-energy excursions stay under 2% of the kinetic
	// energy scale over the whole run.
	if bound := 0.02 * kin; worst > bound {
		t.Fatalf("NVE drift %.4f kcal/mol exceeds bound %.4f (kinetic %.2f)", worst, bound, kin)
	}
}

// TestPMEMTSRecipSavings: the MTS schedule must actually skip reciprocal
// evaluations — k steps per cycle cost one reciprocal evaluation.
func TestPMEMTSRecipSavings(t *testing.T) {
	sys, st, ff := diffSystem(t)
	const mts = 4
	e, err := gonamd.NewSequential(sys, ff, st, gonamd.WithPME(pmeGridSpacing, pmeBeta, mts))
	if err != nil {
		t.Fatal(err)
	}
	const cycles = 3
	for s := 0; s < cycles*mts; s++ {
		e.Step(0.5)
	}
	// One priming evaluation plus one per completed cycle.
	if got := e.RecipEvals(); got != cycles+1 {
		t.Fatalf("reciprocal evaluations = %d over %d cycles, want %d", got, cycles, cycles+1)
	}
}
