// Command gonamdd serves simulations over HTTP: clients submit jobs as
// JSON, a bounded multi-tenant scheduler time-slices them over a shared
// worker pool, and energies, trajectory frames, and Projections
// summaries stream back as NDJSON. Every incomplete job checkpoints on a
// cadence and on graceful shutdown; a restarted server rescans its state
// directory and resumes each job bit-identically.
//
// Usage:
//
//	gonamdd -addr :8765 -state /var/lib/gonamd
//	curl -d '{"system":{"preset":"water","side":12},"steps":1000}' localhost:8765/jobs
//	curl localhost:8765/jobs/j000001/events
//	curl localhost:8765/jobs/j000001/metrics
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"gonamd/internal/serve"
)

func main() {
	log.SetFlags(0)
	addr := flag.String("addr", ":8765", "listen address")
	state := flag.String("state", "gonamdd-state", "state directory: specs, checkpoints, trajectories")
	workers := flag.Int("workers", 0, "worker pool size: concurrent job slices (0 = all cores)")
	slice := flag.Int("slice", 25, "scheduling quantum: engine steps per job slice")
	quota := flag.Int("quota", 2, "per-tenant cap on concurrently running jobs")
	ckptEvery := flag.Int64("ckptevery", 100, "default checkpoint cadence, steps")
	metricsEvery := flag.Duration("metricsevery", time.Second, "per-job FTDC telemetry sampling interval (0 = server default 1s, negative disables)")
	flag.Parse()

	sched, err := serve.NewScheduler(serve.Config{
		StateDir:        *state,
		Workers:         *workers,
		SliceSteps:      *slice,
		TenantQuota:     *quota,
		CheckpointEvery: *ckptEvery,
		MetricsInterval: *metricsEvery,
	})
	if err != nil {
		log.Fatal(err)
	}
	if n := len(sched.List("")); n > 0 {
		log.Printf("gonamdd: rescanned %s: %d job(s)", *state, n)
	}

	srv := &http.Server{Addr: *addr, Handler: serve.NewServer(sched)}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("gonamdd: serving on %s (state %s)", *addr, *state)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting requests, drain running slices,
	// and checkpoint every incomplete job so the next start resumes it.
	log.Printf("gonamdd: signal received, checkpointing jobs")
	shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("gonamdd: http shutdown: %v", err)
	}
	if err := sched.Stop(); err != nil {
		log.Fatalf("gonamdd: checkpointing on shutdown: %v", err)
	}
	log.Printf("gonamdd: all jobs checkpointed, exiting")
}
