// Command chaos demonstrates the fault-injection and recovery layers by
// running the same computation twice — once undisturbed, once under
// injected failures with recovery enabled — and checking that the
// recovered run reproduces the unfailed one exactly.
//
// Two modes:
//
//   - ensemble (default): a replica-exchange run is killed at step k
//     (-crash-at), restarted from its last periodic checkpoint, and run
//     to completion; final positions, velocities, and the full exchange
//     history must be bit-identical to a run that never failed.
//
//   - machine: a cluster simulation runs under a seeded fault plan
//     (message drops/duplicates/delays and a PE crash) with reliable
//     delivery and checkpoint rollback; with a crash-only plan the
//     measured step durations must match the fault-free run to float
//     rounding (message faults perturb timing, so those runs only
//     check completion and protocol health).
//
// Usage:
//
//	chaos -crash-at 120 -steps 200
//	chaos -mode machine -pes 8
//	chaos -mode machine -pes 8 -drop 0.05 -dup 0.02
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"
	"reflect"

	"gonamd"
	"gonamd/internal/vec"
)

func main() {
	log.SetFlags(0)
	mode := flag.String("mode", "ensemble", "ensemble or machine")
	seed := flag.Uint64("seed", 1, "system, ensemble, and fault-plan seed")

	// Ensemble mode.
	crashAt := flag.Int64("crash-at", 120, "ensemble: kill the run at this MD step")
	steps := flag.Int("steps", 200, "ensemble: total MD steps")
	replicas := flag.Int("replicas", 3, "ensemble: ladder rungs")
	side := flag.Float64("side", 12, "ensemble: water box side, Å")
	exchange := flag.Int("exchange", 50, "ensemble: steps between exchange attempts")
	ckptEvery := flag.Int("ckpt-every", 40, "ensemble: checkpoint every N steps")

	// Machine mode.
	pes := flag.Int("pes", 8, "machine: simulated processors")
	drop := flag.Float64("drop", 0, "machine: message drop probability")
	dup := flag.Float64("dup", 0, "machine: message duplication probability")
	delay := flag.Float64("delay", 0, "machine: message delay probability")
	lb := flag.String("lb", "", "machine: load-balancing strategy: greedy+refine (default), refine-only, hierarchical, diffusion, none")

	profile := flag.Bool("profile", false, "print a projections summary of the faulty run's trace")
	flag.Parse()

	// Resolve the strategy name before any work so a typo fails
	// immediately with the list of valid names.
	var lbStrat gonamd.LBStrategy
	if *lb != "" {
		if *mode != "machine" {
			log.Fatalf("-lb %s applies only to -mode machine", *lb)
		}
		var err error
		if lbStrat, err = gonamd.LookupLBStrategy(*lb); err != nil {
			log.Fatal(err)
		}
	}

	ok := false
	switch *mode {
	case "ensemble":
		ok = runEnsemble(*seed, *crashAt, *steps, *replicas, *side, *exchange, *ckptEvery, *profile)
	case "machine":
		ok = runMachine(*seed, *pes, *drop, *dup, *delay, lbStrat, *profile)
	default:
		log.Fatalf("unknown mode %q (want ensemble or machine)", *mode)
	}
	if !ok {
		fmt.Println("FAIL")
		os.Exit(1)
	}
	fmt.Println("PASS")
}

// runEnsemble kills a replica-exchange run at crashAt, resumes it from
// its last checkpoint, and compares the final snapshot bit-for-bit
// against an unfailed reference run.
func runEnsemble(seed uint64, crashAt int64, steps, replicas int, side float64, exchange, ckptEvery int, profile bool) bool {
	if crashAt <= int64(ckptEvery) || crashAt >= int64(steps) {
		log.Fatalf("-crash-at %d must lie in (%d, %d): the first checkpoint must exist before the crash",
			crashAt, ckptEvery, steps)
	}
	sys, st, err := gonamd.BuildSystem(gonamd.WaterBoxSpec(side, seed))
	if err != nil {
		log.Fatal(err)
	}
	ff := gonamd.StandardForceField(5.0)
	fmt.Printf("system: %s, %d atoms; %d replicas, %d steps, exchange every %d\n",
		sys.Name, sys.N(), replicas, steps, exchange)

	dir, err := os.MkdirTemp("", "gonamd-chaos")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	ckptPath := filepath.Join(dir, "ens.ckpt")

	base := gonamd.EnsembleConfig{
		Temperatures:  gonamd.GeometricLadder(300, 360, replicas),
		ExchangeEvery: exchange,
		Seed:          seed,
	}

	// Reference: never fails, no checkpointing.
	ref, err := gonamd.NewEnsemble(sys, ff, st, base)
	if err != nil {
		log.Fatal(err)
	}
	if err := ref.Run(steps); err != nil {
		log.Fatal(err)
	}
	want := ref.Snapshot()

	// Chaos: checkpoint periodically and die at crashAt.
	cfg := base
	cfg.CheckpointEvery = ckptEvery
	cfg.CheckpointPath = ckptPath
	cfg.FailAt = crashAt
	victim, err := gonamd.NewEnsemble(sys, ff, st, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := victim.Run(steps); err != gonamd.ErrInjectedFailure {
		log.Fatalf("victim run: got %v, want injected failure at step %d", err, crashAt)
	}
	fmt.Printf("killed at step %d (work since the step-%d checkpoint lost)\n",
		victim.Step(), int64(ckptEvery)*((crashAt-1)/int64(ckptEvery)))

	// Recovery: a fresh process resumes from the checkpoint file.
	cfg.FailAt = 0
	if profile {
		cfg.Trace = gonamd.NewTraceLog()
	}
	recovered, err := gonamd.NewEnsemble(sys, ff, st, cfg)
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Open(ckptPath)
	if err != nil {
		log.Fatal(err)
	}
	err = recovered.Resume(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resumed from %s at step %d\n", ckptPath, recovered.Step())
	if err := recovered.Run(steps - int(recovered.Step())); err != nil {
		log.Fatal(err)
	}

	got := recovered.Snapshot()
	if !reflect.DeepEqual(want, got) {
		fmt.Println("recovered run diverged from the unfailed reference:")
		for i := range want.Replicas {
			if !reflect.DeepEqual(want.Replicas[i], got.Replicas[i]) {
				fmt.Printf("  replica %d state differs\n", i)
			}
		}
		if !reflect.DeepEqual(want.Attempts, got.Attempts) || !reflect.DeepEqual(want.Accepts, got.Accepts) {
			fmt.Printf("  exchange history differs: %v/%v vs %v/%v\n",
				want.Accepts, want.Attempts, got.Accepts, got.Attempts)
		}
		return false
	}
	att, acc := recovered.ExchangeCounts()
	fmt.Printf("final state bit-identical to unfailed run (exchanges %v of %v accepted)\n", acc, att)
	if profile && cfg.Trace != nil {
		fmt.Println()
		gonamd.AnalyzeTrace(cfg.Trace, gonamd.ProjectionsOptions{PEs: replicas}).WriteText(os.Stdout)
	}
	return true
}

// runMachine runs a cluster simulation under a fault plan with reliable
// delivery and checkpoint rollback, against a fault-free reference.
func runMachine(seed uint64, pes int, drop, dup, delay float64, lb gonamd.LBStrategy, profile bool) bool {
	sys, st, err := gonamd.BuildSystem(gonamd.Spec{
		Name: "chaos", Box: vec.New(39, 39, 39), TargetAtoms: 3000,
		ProteinChains: 1, ChainResidues: 25, LipidCount: 4, LipidTailLen: 8,
		Seed: seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	grid, err := gonamd.NewGrid(sys, 12.0)
	if err != nil {
		log.Fatal(err)
	}
	w, err := gonamd.BuildWorkload("chaos", sys, st, grid, 12.0, 13.5)
	if err != nil {
		log.Fatal(err)
	}
	model := gonamd.CalibrateMachine("chaos-ascired", 1.0, gonamd.ASCIRed().Net, w.Counts())
	cfg := gonamd.ClusterConfig{PEs: pes, Model: model, SplitSelf: true, CollectTrace: profile, LB: lb}
	if lb != nil {
		fmt.Printf("load balancer: %s\n", lb.Name())
	}

	// Fault-free reference with the identical recovery machinery (the
	// reliable protocol's acks cost time, so only a like-for-like run
	// can be bit-compared).
	sim, err := gonamd.NewClusterSim(w, gonamd.WithFaultPlan(cfg, nil))
	if err != nil {
		log.Fatal(err)
	}
	ref := sim.Run()
	fmt.Printf("fault-free: %d PEs, avg step %.4fs\n", ref.PEs, ref.AvgStep)

	// Crash one PE ~30% of the way to the measured window; it restarts
	// after 5% of that span.
	plan := &gonamd.FaultPlan{
		Seed: seed, DropProb: drop, DupProb: dup,
		DelayProb: delay, DelayMax: 4 * cfg.Model.Net.Latency,
		Crashes: []gonamd.PECrash{{PE: 1, At: 0.3 * ref.MeasureT0, Down: 0.05 * ref.MeasureT0}},
	}
	sim2, err := gonamd.NewClusterSim(w, gonamd.WithFaultPlan(cfg, plan))
	if err != nil {
		log.Fatal(err)
	}
	res := sim2.Run()
	fmt.Printf("faulty: crashes=%d restarts=%d lost=%d dropped=%d duplicated=%d delayed=%d\n",
		res.FaultStats.Crashes, res.FaultStats.Restarts, res.FaultStats.Lost,
		res.FaultStats.Dropped, res.FaultStats.Duplicated, res.FaultStats.Delayed)
	fmt.Printf("reliable: sends=%d acks=%d retries=%d dups-suppressed=%d giveups=%d; rollbacks=%d\n",
		res.Reliable.Sends, res.Reliable.Acks, res.Reliable.Retries,
		res.Reliable.Duplicates, res.Reliable.GiveUps, res.Recoveries)

	if res.Recoveries == 0 {
		fmt.Println("expected at least one checkpoint rollback")
		return false
	}
	if drop == 0 && dup == 0 && delay == 0 {
		// Crash-only plans must leave the measured steps untouched. The
		// recovered run replays the identical charge sequence from a
		// crash-shifted absolute virtual time, so durations agree only
		// to float rounding (~1e-12 relative), not bit-for-bit.
		const tol = 1e-9
		if len(ref.StepDurations) != len(res.StepDurations) {
			fmt.Printf("measured %d steps fault-free, %d recovered\n",
				len(ref.StepDurations), len(res.StepDurations))
			return false
		}
		for i, d := range ref.StepDurations {
			if diff := math.Abs(res.StepDurations[i] - d); diff > tol*math.Abs(d) {
				fmt.Printf("step %d duration diverged: fault-free %.15g, recovered %.15g\n",
					i, d, res.StepDurations[i])
				return false
			}
		}
		fmt.Printf("measured step durations identical to fault-free run within %g relative (avg %.4fs)\n",
			tol, res.AvgStep)
	} else {
		if res.Reliable.GiveUps > 0 {
			fmt.Println("reliable layer abandoned sends")
			return false
		}
		fmt.Println("run completed under message faults with no abandoned sends")
	}
	if profile && res.Trace != nil {
		fmt.Println()
		gonamd.AnalyzeTrace(res.Trace, gonamd.ProjectionsOptions{PEs: pes}).WriteText(os.Stdout)
		fmt.Println()
		fmt.Print(gonamd.LBReport(res.LBStats))
	}
	return true
}
