// Command projections analyzes a Projections-style trace (JSON Lines,
// as written by the engines' WithTrace instrumentation, cmd/mdrun
// -trace, cmd/ensemble -trace, or a cluster simulation's CollectTrace)
// and prints utilization, per-category time profiles, grainsize
// histograms, per-PE timelines, and step-time statistics — the analyses
// behind the paper's Figures 1–6 and Table 1.
//
// Usage:
//
//	projections [flags] trace.jsonl
//
// Reads stdin when the path is "-" or absent. With only -summary,
// -grainsize, or -json the trace streams through the analyzer without
// being materialized; -timeline and -gantt need the full log in memory.
// With -ftdc the input is an FTDC telemetry file (binary chunked or
// JSONL, as written by mdrun -metrics or a gonamdd job) and the output
// is per-field summaries plus a steps/sec sparkline.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"gonamd/internal/ftdc"
	"gonamd/internal/projections"
	"gonamd/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("projections: ")

	var (
		summary   = flag.Bool("summary", true, "print the summary report (categories, per-PE utilization, entries, steps)")
		timeline  = flag.Bool("timeline", false, "print the per-PE timeline (dominant-category letters, Figures 3-4)")
		gantt     = flag.Bool("gantt", false, "print the utilization-vs-time ASCII chart (Figures 5-6)")
		grainsize = flag.Bool("grainsize", false, "print only the grainsize histogram (Figures 1-2)")
		jsonOut   = flag.Bool("json", false, "emit the report as versioned JSON instead of text")
		pes       = flag.Int("pes", 0, "PE count override (default: 1+max PE seen in the trace)")
		bins      = flag.Int("bins", 0, "grainsize histogram bins (default 30)")
		top       = flag.Int("top", 0, "entry-table rows (default 12)")
		width     = flag.Int("width", 100, "timeline/gantt width in characters")
		ftdcMode  = flag.Bool("ftdc", false, "input is FTDC telemetry (binary chunked or JSONL, as written by mdrun -metrics or a gonamdd job); print per-field summaries and a throughput sparkline")
	)
	flag.Parse()

	in := io.Reader(os.Stdin)
	if path := flag.Arg(0); path != "" && path != "-" {
		f, err := os.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		in = f
	}

	if *ftdcMode {
		schema, samples, err := ftdc.ReadAny(in)
		if err != nil {
			log.Fatal(err)
		}
		ftdc.WriteSummary(os.Stdout, schema, samples)
		if schema.FieldIndex("steps_per_sec") >= 0 {
			fmt.Println()
			ftdc.WriteRateSeries(os.Stdout, schema, samples, "steps_per_sec", *width)
		}
		return
	}

	opt := projections.Options{PEs: *pes, HistBins: *bins, TopEntries: *top}

	// The timeline and gantt renderings replay the raw records, so those
	// modes materialize the log; every other mode streams.
	var rep *projections.Report
	var tlog *trace.Log
	var err error
	if *timeline || *gantt {
		if tlog, err = trace.ReadJSON(in); err != nil {
			log.Fatal(err)
		}
		rep = projections.Analyze(tlog, opt)
	} else if rep, err = projections.AnalyzeReader(in, opt); err != nil {
		log.Fatal(err)
	}

	switch {
	case *jsonOut:
		if err := rep.WriteJSON(os.Stdout); err != nil {
			log.Fatal(err)
		}
	case *grainsize:
		fmt.Print(rep.GrainsizeText())
	case *summary:
		rep.WriteText(os.Stdout)
	}

	if *timeline {
		peList := make([]int32, rep.PEs)
		for i := range peList {
			peList[i] = int32(i)
		}
		fmt.Print(tlog.Timeline(trace.TimelineOptions{
			PEs: peList, T0: rep.T0, T1: rep.T1, Width: *width,
		}))
	}
	if *gantt {
		fmt.Print(projections.UtilizationGantt(tlog, rep.PEs, *width, 10, rep.T0, rep.T1))
	}
}
