// Command ensemble runs replica-exchange molecular dynamics: N replicas
// of a synthetic system on a geometric temperature ladder, advanced
// concurrently with periodic Metropolis exchanges, with atomic
// checkpointing and exact restart.
//
// Usage:
//
//	ensemble -system water -side 14 -replicas 4 -tmin 300 -tmax 400 -steps 1000
//	ensemble -system br -replicas 8 -steps 5000 -ckpt br.ckpt -ckptevery 500
//	ensemble -system br -replicas 8 -steps 5000 -ckpt br.ckpt -resume
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gonamd"
	"gonamd/internal/ftdc"
	"gonamd/internal/sysio"
)

// ensembleMetricsSchema is the telemetry layout for a replica-exchange
// run: ladder-wide step counters plus exchange statistics, sampled by a
// generic (non-engine) FTDC recorder.
func ensembleMetricsSchema() ftdc.Schema {
	return ftdc.Schema{
		Version: ftdc.SchemaVersion,
		Fields: []ftdc.Field{
			{Name: "steps", Kind: ftdc.Counter},
			{Name: "steps_per_sec", Kind: ftdc.Gauge},
			{Name: "replica_steps", Kind: ftdc.Counter},
			{Name: "exchanges_attempted", Kind: ftdc.Counter},
			{Name: "exchanges_accepted", Kind: ftdc.Counter},
		},
	}
}

// Field indices of ensembleMetricsSchema.
const (
	emSteps = iota
	emStepsPerSec
	emReplicaSteps
	emExchAttempted
	emExchAccepted
)

func main() {
	log.SetFlags(0)
	system := flag.String("system", "water", "system: water, br, apoa1, bc1")
	inFile := flag.String("in", "", "load a system saved by molgen -o instead of building one")
	side := flag.Float64("side", 14, "water box side length, Å")
	seed := flag.Uint64("seed", 1, "builder and ensemble seed")
	replicas := flag.Int("replicas", 4, "number of replicas (ladder rungs)")
	tmin := flag.Float64("tmin", 300, "coldest rung, K")
	tmax := flag.Float64("tmax", 400, "hottest rung, K")
	steps := flag.Int("steps", 1000, "MD steps to advance every replica")
	dt := flag.Float64("dt", 0.5, "timestep, fs")
	gamma := flag.Float64("gamma", 0.005, "Langevin friction, 1/fs")
	exchange := flag.Int("exchange", 100, "steps between exchange attempts (<0 disables)")
	workers := flag.Int("workers", 0, "concurrent replicas (0 = all cores)")
	engineWorkers := flag.Int("engineworkers", 0, "workers per replica engine (0 = auto, 1 = sequential)")
	minimize := flag.Int("minimize", 200, "minimization iterations before dynamics")
	cutoff := flag.Float64("cutoff", 9.0, "nonbonded cutoff, Å")
	every := flag.Int("every", 0, "print a status line every N steps (0 = each exchange interval)")
	ckptPath := flag.String("ckpt", "", "checkpoint file (written atomically)")
	ckptEvery := flag.Int("ckptevery", 0, "checkpoint every N steps (0 = only at end)")
	resume := flag.Bool("resume", false, "resume from -ckpt before running")
	tracePath := flag.String("trace", "", "write the Projections-style event log (JSON lines) here")
	profile := flag.Bool("profile", false, "print a projections summary of the ensemble trace at exit")
	metricsPath := flag.String("metrics", "", "write FTDC telemetry samples to this file (analyze with projections -ftdc)")
	metricsEvery := flag.Duration("metricsevery", time.Second, "telemetry sampling interval; 0 samples only at exit (requires -metrics)")
	flag.Parse()
	if *metricsEvery < 0 {
		log.Fatalf("-metricsevery %v must be ≥ 0 (0 = one sample at exit)", *metricsEvery)
	}

	var sys *gonamd.System
	var st *gonamd.State
	if *inFile != "" {
		f, err := os.Open(*inFile)
		if err != nil {
			log.Fatal(err)
		}
		sys, st, err = sysio.Load(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			log.Fatal(err)
		}
	} else {
		var spec gonamd.Spec
		switch *system {
		case "water":
			spec = gonamd.WaterBoxSpec(*side, *seed)
		case "br":
			spec = gonamd.BRSpec()
		case "apoa1":
			spec = gonamd.ApoA1Spec()
		case "bc1":
			spec = gonamd.BC1Spec()
		default:
			log.Fatalf("unknown system %q", *system)
		}
		var err error
		sys, st, err = gonamd.BuildSystem(spec)
		if err != nil {
			log.Fatal(err)
		}
	}
	ff := gonamd.StandardForceField(*cutoff)
	fmt.Printf("%s: %d atoms, %d bonded terms, box %v\n", sys.Name, sys.N(), sys.NumBondedTerms(), sys.Box)

	if *minimize > 0 {
		m, err := gonamd.NewSequential(sys, ff, st)
		if err != nil {
			log.Fatal(err)
		}
		e0 := m.Energies().Potential()
		e1 := m.Minimize(*minimize, 0.2)
		fmt.Printf("minimized %d iterations: %.1f -> %.1f kcal/mol\n", *minimize, e0, e1)
	}

	ladder := gonamd.GeometricLadder(*tmin, *tmax, *replicas)
	tlog := gonamd.NewTraceLog()
	cfg := gonamd.EnsembleConfig{
		Temperatures:    ladder,
		Dt:              *dt,
		Gamma:           *gamma,
		ExchangeEvery:   *exchange,
		Seed:            *seed,
		Workers:         *workers,
		EngineWorkers:   *engineWorkers,
		CheckpointEvery: *ckptEvery,
		CheckpointPath:  *ckptPath,
		Trace:           tlog,
	}
	if *ckptEvery > 0 && *ckptPath == "" {
		log.Fatal("-ckptevery requires -ckpt")
	}
	ens, err := gonamd.NewEnsemble(sys, ff, st, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ensemble: %d replicas, ladder %.1f..%.1f K, exchange every %d steps\n",
		*replicas, ladder[0], ladder[len(ladder)-1], *exchange)

	if *resume {
		if *ckptPath == "" {
			log.Fatal("-resume requires -ckpt")
		}
		snap, err := gonamd.LoadCheckpointFile(*ckptPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := ens.Restore(snap); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("resumed from %s at step %d\n", *ckptPath, ens.Step())
	}

	var mrec *ftdc.Recorder
	var mfw *ftdc.FileWriter
	if *metricsPath != "" {
		fw, err := ftdc.CreateFile(*metricsPath, ensembleMetricsSchema())
		if err != nil {
			log.Fatal(err)
		}
		mfw = fw
		mrec = ftdc.NewRecorder(ftdc.Options{
			Schema:      ensembleMetricsSchema(),
			Interval:    *metricsEvery,
			StepField:   emSteps,
			RateField:   emStepsPerSec,
			RuntimeBase: -1,
			Sink:        fw,
		})
	}
	// publishMetrics refreshes the recorder slots from the ensemble's
	// counters; the sampler (ticker or final Close) snapshots them.
	publishMetrics := func() {
		if mrec == nil {
			return
		}
		mrec.StoreInt(emSteps, ens.Step())
		mrec.StoreInt(emReplicaSteps, ens.Step()*int64(ens.NumReplicas()))
		att, acc := ens.ExchangeCounts()
		var ta, tc int64
		for i := range att {
			ta += att[i]
			tc += acc[i]
		}
		mrec.StoreInt(emExchAttempted, ta)
		mrec.StoreInt(emExchAccepted, tc)
	}

	block := *every
	if block <= 0 {
		block = *exchange
	}
	if block <= 0 {
		block = *steps
	}
	// On SIGINT/SIGTERM the block loop exits at the next block boundary;
	// the final-checkpoint path below then records the partial run, so an
	// interrupted ensemble resumes with -resume instead of starting over.
	ctx, stopSignals := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stopSignals()
	start := time.Now()
	for done := 0; done < *steps; {
		if ctx.Err() != nil {
			fmt.Printf("interrupted at step %d; writing final checkpoint\n", ens.Step())
			break
		}
		n := block
		if *steps-done < n {
			n = *steps - done
		}
		if err := ens.Run(n); err != nil {
			log.Fatal(err)
		}
		done += n
		publishMetrics()
		fmt.Printf("step %6d ", ens.Step())
		for i := 0; i < ens.NumReplicas(); i++ {
			fmt.Printf(" U%d=%8.1f", i, ens.Replica(i).Potential())
		}
		fmt.Println(" kcal/mol")
	}
	el := time.Since(start)

	att, acc := ens.ExchangeCounts()
	rates := ens.AcceptanceRates()
	fmt.Println("exchange acceptance per neighbor pair:")
	for i, r := range rates {
		fmt.Printf("  %5.1fK <-> %5.1fK: %3d/%3d = %.2f\n",
			ladder[i], ladder[i+1], acc[i], att[i], r)
	}
	fmt.Printf("%d steps x %d replicas in %v (%.1f replica-steps/s)\n",
		*steps, *replicas, el.Round(time.Millisecond),
		float64(*steps**replicas)/el.Seconds())

	if mrec != nil {
		publishMetrics()
		err := mrec.Close()
		if cerr := mfw.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			log.Fatalf("writing telemetry %s: %v", *metricsPath, err)
		}
		fmt.Printf("telemetry: %s (%d samples; analyze with projections -ftdc)\n",
			*metricsPath, mrec.SampleCount())
	}
	if *ckptPath != "" {
		if err := gonamd.SaveCheckpointFile(*ckptPath, ens.Snapshot()); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("final checkpoint: %s (step %d)\n", *ckptPath, ens.Step())
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
		err = tlog.WriteJSON(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace: %s (%d records)\n", *tracePath, len(tlog.Records))
	}
	if *profile {
		fmt.Println()
		gonamd.AnalyzeTrace(tlog, gonamd.ProjectionsOptions{PEs: *replicas}).WriteText(os.Stdout)
	}
}
