// Command molgen builds a synthetic benchmark system and describes it:
// composition, density, bonded topology, charge, patch decomposition, and
// work distribution statistics.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"gonamd"
	"gonamd/internal/sysio"
)

func main() {
	log.SetFlags(0)
	system := flag.String("system", "apoa1", "system: water, br, apoa1, bc1")
	side := flag.Float64("side", 24, "water box side, Å")
	seed := flag.Uint64("seed", 1, "builder seed")
	out := flag.String("o", "", "save the built system to this file (load with mdrun -in)")
	flag.Parse()

	var spec gonamd.Spec
	switch *system {
	case "water":
		spec = gonamd.WaterBoxSpec(*side, *seed)
	case "br":
		spec = gonamd.BRSpec()
	case "apoa1":
		spec = gonamd.ApoA1Spec()
	case "bc1":
		spec = gonamd.BC1Spec()
	default:
		log.Fatalf("unknown system %q", *system)
	}

	sys, st, err := gonamd.BuildSystem(spec)
	if err != nil {
		log.Fatal(err)
	}
	vol := sys.Box.X * sys.Box.Y * sys.Box.Z
	var q float64
	for _, a := range sys.Atoms {
		q += a.Charge
	}
	full, modified := sys.NumExclusions()

	fmt.Printf("system:      %s\n", spec.Name)
	fmt.Printf("atoms:       %d (%.4f atoms/Å³)\n", sys.N(), float64(sys.N())/vol)
	fmt.Printf("box:         %.2f × %.2f × %.2f Å\n", sys.Box.X, sys.Box.Y, sys.Box.Z)
	fmt.Printf("bonds:       %d\n", len(sys.Bonds))
	fmt.Printf("angles:      %d\n", len(sys.Angles))
	fmt.Printf("dihedrals:   %d\n", len(sys.Dihedrals))
	fmt.Printf("impropers:   %d\n", len(sys.Impropers))
	fmt.Printf("exclusions:  %d full, %d modified (1-4)\n", full, modified)
	fmt.Printf("net charge:  %+.3f e\n", q)

	var grid *gonamd.Grid
	if spec.PatchDims != [3]int{} {
		grid, err = gonamd.NewGridDims(sys, spec.PatchDims, gonamd.Cutoff)
	} else {
		grid, err = gonamd.NewGrid(sys, gonamd.Cutoff)
	}
	if err != nil {
		log.Fatal(err)
	}
	bins := grid.Bin(st.Pos)
	counts := make([]int, len(bins))
	for i, b := range bins {
		counts[i] = len(b)
	}
	sort.Ints(counts)
	fmt.Printf("patches:     %d (%d×%d×%d), %.1f Å edges\n",
		grid.NumPatches(), grid.Dim[0], grid.Dim[1], grid.Dim[2], grid.Size.X)
	fmt.Printf("atoms/patch: min %d, median %d, max %d (density contrast drives load imbalance)\n",
		counts[0], counts[len(counts)/2], counts[len(counts)-1])

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		// Close errors are real write errors on buffered filesystems: a
		// silently truncated system file would fail obscurely in mdrun.
		err = sysio.Save(f, sys, st)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			log.Fatalf("saving %s: %v", *out, err)
		}
		fmt.Printf("saved:       %s\n", *out)
	}
}
