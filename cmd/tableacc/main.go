// Command tableacc prints the interaction-table accuracy sweep: for a
// range of table spacings, the maximum relative force and energy error
// of the tabulated interaction against the analytic kernels over the
// physical separation range. The sweep shows the h² convergence of the
// Hermite construction and where the default resolution sits inside the
// production envelope (see DESIGN.md, "Tabulated kernels").
//
// Usage:
//
//	make table-accuracy
//	tableacc -cutoff 9 -beta 0.35 -xmin 2
package main

import (
	"flag"
	"fmt"
	"log"

	"gonamd/internal/forcefield"
)

func main() {
	log.SetFlags(0)
	cutoff := flag.Float64("cutoff", 9.0, "nonbonded cutoff, Å")
	beta := flag.Float64("beta", 0.35, "Ewald splitting parameter, 1/Å (0 = shifted Coulomb)")
	xmin := flag.Float64("xmin", 2.0, "sweep start, Å² (r ≈ 1.4 Å reaches into the repulsive wall)")
	flag.Parse()

	p := forcefield.Standard(*cutoff)
	if *beta > 0 {
		p = p.WithEwald(*beta)
	}
	rc2 := p.Cutoff * p.Cutoff

	mode := "shifted Coulomb"
	if *beta > 0 {
		mode = fmt.Sprintf("Ewald real space (beta %.3g 1/Å)", *beta)
	}
	fmt.Printf("interaction-table accuracy sweep: cutoff %g Å, %s, x in [%g, %g) Å²\n",
		*cutoff, mode, *xmin, rc2)
	fmt.Printf("%8s  %12s  %14s  %14s\n", "bins", "spacing Å²", "max force err", "max energy err")
	for bins := 1024; bins <= 2*forcefield.DefaultTableBins; bins *= 2 {
		spacing := rc2 / float64(bins)
		fErr, eErr := forcefield.TableForceError(p, spacing, *xmin)
		def := ""
		if bins == forcefield.DefaultTableBins {
			def = "  <- default"
		}
		fmt.Printf("%8d  %12.5g  %14.3g  %14.3g%s\n", bins, spacing, fErr, eErr, def)
	}
	fmt.Println("\nerrors are relative to the per-pair interaction scale over the sweep;")
	fmt.Println("halving the spacing cuts the error ~4x (the h² signature of the spline).")
}
