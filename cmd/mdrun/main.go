// Command mdrun runs real molecular dynamics on a synthetic system using
// either the sequential reference engine or the shared-memory parallel
// engine, printing an energy log.
//
// Usage:
//
//	mdrun -system water -side 24 -steps 100 -dt 0.5 -workers 0
//	mdrun -system br -steps 50 -minimize 300
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"

	"gonamd"
	"gonamd/internal/ckpt"
	"gonamd/internal/sysio"
	"gonamd/internal/thermo"
	"gonamd/internal/traj"
)

func main() {
	log.SetFlags(0)
	system := flag.String("system", "water", "system: water, br, apoa1, bc1")
	inFile := flag.String("in", "", "load a system saved by molgen -o instead of building one")
	side := flag.Float64("side", 24, "water box side length, Å")
	seed := flag.Uint64("seed", 1, "builder seed")
	steps := flag.Int("steps", 100, "MD steps")
	dt := flag.Float64("dt", 0.5, "timestep, fs")
	workers := flag.Int("workers", 0, "parallel workers (0 = all cores, -1 = sequential engine)")
	lb := flag.String("lb", "", "parallel load-balancing strategy: greedy+refine (default), refine-only, hierarchical, diffusion, none")
	minimize := flag.Int("minimize", 200, "minimization iterations before dynamics")
	cutoff := flag.Float64("cutoff", 9.0, "nonbonded cutoff, Å")
	every := flag.Int("every", 10, "print energies every N steps")
	thermostat := flag.String("thermostat", "", "NVT thermostat: rescale, berendsen, langevin (default NVE)")
	targetT := flag.Float64("temperature", 300, "thermostat target temperature, K")
	trajPath := flag.String("traj", "", "write a binary trajectory to this file")
	ckptPath := flag.String("ckpt", "", "write a final sysio snapshot here (reload with -in); also written on SIGINT/SIGTERM")
	trajEvery := flag.Int("trajevery", 10, "write a trajectory frame every N steps")
	shake := flag.Bool("shake", false, "constrain bonds to hydrogen (sequential engine; allows -dt 2)")
	skin := flag.Float64("skin", 0, "Verlet list skin, Å (0 = off; seq pairlist / par block lists)")
	cluster := flag.String("cluster", "", "M×N cluster pair lists, e.g. 4x4 or 4x8 (replaces -skin lists)")
	f32 := flag.Bool("f32", false, "mixed-precision cluster kernels: float32 pair math, float64 reduction (requires -cluster)")
	table := flag.Bool("table", false, "tabulated cluster kernels: r²-indexed interaction tables, no sqrt/erfc/exp in the pair loop (requires -cluster; combines with -f32)")
	tableSpacing := flag.Float64("table-spacing", 0, "interaction table grid spacing, Å² (0 = default resolution; requires -table)")
	clusterSkin := flag.Float64("cluster-skin", 0, "cluster list skin override, Å (0 = default 1.5; requires -cluster)")
	pme := flag.Bool("pme", false, "full electrostatics: smooth particle-mesh Ewald")
	grid := flag.Float64("grid", 1.0, "PME mesh spacing, Å (mesh dims round up to powers of two)")
	ewaldBeta := flag.Float64("ewald-beta", 0, "Ewald splitting parameter, 1/Å (0 = auto from cutoff)")
	mts := flag.Int("mts", 4, "PME impulse-MTS period: reciprocal sum every N steps")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the dynamics loop to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	profile := flag.Bool("profile", false, "print a projections summary of the run's phase trace at exit")
	tracePath := flag.String("trace", "", "write the phase trace as JSON Lines to this file (analyze with cmd/projections)")
	metricsPath := flag.String("metrics", "", "write FTDC telemetry samples to this file (analyze with projections -ftdc)")
	metricsEvery := flag.Duration("metricsevery", time.Second, "telemetry sampling interval; 0 samples only at exit (requires -metrics)")
	flag.Parse()

	// Contradictory table flags get CLI-level errors that name the flags,
	// before any work happens (the options layer repeats the structural
	// check in API terms for library use).
	if *table && *cluster == "" {
		log.Fatal("-table requires -cluster: the tabulated kernels only exist in cluster form (e.g. -cluster 8x8 -table)")
	}
	if *tableSpacing != 0 && !*table {
		log.Fatalf("-table-spacing %g has no effect without -table", *tableSpacing)
	}
	if *tableSpacing < 0 {
		log.Fatalf("-table-spacing %g Å² must be ≥ 0 (0 = default resolution)", *tableSpacing)
	}
	if *metricsEvery < 0 {
		log.Fatalf("-metricsevery %v must be ≥ 0 (0 = one sample at exit)", *metricsEvery)
	}
	if *metricsEvery != time.Second && *metricsPath == "" {
		log.Fatalf("-metricsevery %v has no effect without -metrics", *metricsEvery)
	}
	if *lb != "" {
		// Resolve the name before any expensive setup so a typo fails
		// immediately with the list of valid strategies.
		if _, err := gonamd.LookupLBStrategy(*lb); err != nil {
			log.Fatal(err)
		}
	}

	var sys *gonamd.System
	var st *gonamd.State
	if *inFile != "" {
		f, err := os.Open(*inFile)
		if err != nil {
			log.Fatal(err)
		}
		sys, st, err = sysio.Load(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			log.Fatal(err)
		}
	} else {
		var spec gonamd.Spec
		switch *system {
		case "water":
			spec = gonamd.WaterBoxSpec(*side, *seed)
		case "br":
			spec = gonamd.BRSpec()
		case "apoa1":
			spec = gonamd.ApoA1Spec()
		case "bc1":
			spec = gonamd.BC1Spec()
		default:
			log.Fatalf("unknown system %q", *system)
		}
		var err error
		sys, st, err = gonamd.BuildSystem(spec)
		if err != nil {
			log.Fatal(err)
		}
	}
	ff := gonamd.StandardForceField(*cutoff)
	fmt.Printf("%s: %d atoms, %d bonded terms, box %v\n", sys.Name, sys.N(), sys.NumBondedTerms(), sys.Box)

	if *minimize > 0 {
		m, err := gonamd.NewSequential(sys, ff, st)
		if err != nil {
			log.Fatal(err)
		}
		e0 := m.Energies().Potential()
		e1 := m.Minimize(*minimize, 0.2)
		fmt.Printf("minimized %d iterations: %.1f -> %.1f kcal/mol\n", *minimize, e0, e1)
	}

	var th thermo.Thermostat
	switch *thermostat {
	case "":
	case "rescale":
		th = &thermo.Rescale{Target: *targetT, Interval: 10}
	case "berendsen":
		th = &thermo.Berendsen{Target: *targetT, Tau: 100}
	case "langevin":
		th = &thermo.Langevin{Target: *targetT, Gamma: 0.005, Seed: *seed}
	default:
		log.Fatalf("unknown thermostat %q", *thermostat)
	}
	if th != nil {
		fmt.Printf("thermostat: %s at %.0f K\n", th.Name(), *targetT)
	}

	if *shake {
		*workers = -1 // constrained stepping runs on the sequential engine
	}

	// Option validation — skin/grid/MTS ranges and the -shake/-pme
	// exclusion — lives in the options layer; construction errors carry
	// the explanation.
	var tlog *gonamd.TraceLog
	if *profile || *tracePath != "" {
		tlog = gonamd.NewTraceLog()
	}
	var opts []gonamd.Option
	if th != nil {
		opts = append(opts, gonamd.WithThermostat(th))
	}
	if *pme {
		opts = append(opts, gonamd.WithPME(*grid, *ewaldBeta, *mts))
	}
	var clM, clN int
	if *cluster != "" {
		if _, err := fmt.Sscanf(*cluster, "%dx%d", &clM, &clN); err != nil {
			log.Fatalf("bad -cluster %q: want MxN, e.g. 4x4", *cluster)
		}
		opts = append(opts, gonamd.WithClusterLists(clM, clN))
	}
	if *clusterSkin > 0 {
		opts = append(opts, gonamd.WithClusterSkin(*clusterSkin))
	}
	if *f32 {
		opts = append(opts, gonamd.WithMixedPrecision())
	}
	if *table {
		opts = append(opts, gonamd.WithTabulatedKernels(*tableSpacing))
	}
	if tlog != nil {
		opts = append(opts, gonamd.WithTrace(tlog))
	}
	var mrec *gonamd.MetricsRecorder
	var mfw *gonamd.MetricsFileWriter
	if *metricsPath != "" {
		fw, err := gonamd.CreateMetricsFile(*metricsPath, gonamd.EngineMetricsSchema())
		if err != nil {
			log.Fatal(err)
		}
		mfw = fw
		mrec = gonamd.NewMetricsRecorder(*metricsEvery)
		mrec.SetSink(mfw)
		opts = append(opts, gonamd.WithMetricsRecorder(mrec))
	}

	var eng gonamd.Engine
	var constraints *gonamd.Constraints
	if *workers < 0 {
		if *lb != "" {
			log.Fatalf("-lb %s applies only to the parallel engine (drop -shake / use -workers ≥ 0)", *lb)
		}
		if *skin > 0 {
			opts = append(opts, gonamd.WithPairlist(*skin))
		}
		if *shake {
			opts = append(opts, gonamd.WithHBondConstraints())
		}
		e, err := gonamd.NewSequential(sys, ff, st, opts...)
		if err != nil {
			log.Fatal(err)
		}
		if constraints = e.Constraints(); constraints != nil {
			fmt.Printf("SHAKE/RATTLE: %d constrained bonds\n", constraints.Count())
		}
		eng = e
		fmt.Println("engine: sequential")
	} else {
		if *skin > 0 {
			opts = append(opts, gonamd.WithBlockLists(*skin))
		}
		if *lb != "" {
			opts = append(opts, gonamd.WithLoadBalancer(*lb))
		}
		e, err := gonamd.NewParallel(sys, ff, st, *workers, opts...)
		if err != nil {
			log.Fatal(err)
		}
		eng = e
		fmt.Printf("engine: parallel, %d workers, %d tasks\n", e.Workers(), e.NumTasks())
		if *lb != "" {
			fmt.Printf("load balancer: %s\n", *lb)
		}
	}
	if *skin > 0 {
		fmt.Printf("verlet lists: skin %.2f Å\n", *skin)
	}
	if *cluster != "" {
		mode := "fp64"
		if *f32 {
			mode = "fp32-mixed"
		}
		if *table {
			mode += "-tab"
		}
		skinVal := *clusterSkin
		if skinVal == 0 {
			skinVal = 1.5
		}
		fmt.Printf("cluster lists: %dx%d, skin %.2f Å, %s\n", clM, clN, skinVal, mode)
	}
	if *table {
		if *tableSpacing > 0 {
			fmt.Printf("interaction table: spacing %g Å²\n", *tableSpacing)
		} else {
			fmt.Printf("interaction table: default resolution (cutoff²/%d bins)\n", gonamd.DefaultTableBins)
		}
	}
	if *pme {
		beta := *ewaldBeta
		if beta == 0 {
			beta = 3.12 / *cutoff
		}
		fmt.Printf("pme: grid spacing %.2f Å, ewald beta %.3f 1/Å, MTS period %d\n", *grid, beta, *mts)
	}

	var tw *traj.Writer
	var trajFile *os.File
	if *trajPath != "" {
		f, err := os.Create(*trajPath)
		if err != nil {
			log.Fatal(err)
		}
		trajFile = f
		tw, err = traj.NewWriter(f, sys.N(), sys.Box)
		if err != nil {
			log.Fatal(err)
		}
	}

	// Profiling covers only the dynamics loop: setup (building, binning,
	// minimization) would otherwise dominate short runs.
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				log.Fatalf("writing CPU profile %s: %v", *cpuprofile, err)
			}
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				log.Fatal(err)
			}
			runtime.GC() // materialize the steady-state live set
			err = pprof.WriteHeapProfile(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				log.Fatalf("writing heap profile %s: %v", *memprofile, err)
			}
		}()
	}

	// On SIGINT/SIGTERM the dynamics loop exits cleanly at the next step
	// boundary, so the trajectory, trace, and final checkpoint below are
	// all still written — an interrupted run is a shorter run, not a
	// corrupted one.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	seqEng, _ := eng.(*gonamd.Sequential)
	start := time.Now()
	done := 0
	for s := 1; s <= *steps; s++ {
		if ctx.Err() != nil {
			fmt.Printf("interrupted after step %d; flushing outputs\n", done)
			break
		}
		if constraints != nil {
			if err := seqEng.StepConstrained(*dt, constraints); err != nil {
				log.Fatal(err)
			}
		} else {
			eng.Step(*dt)
		}
		done = s
		if s%*every == 0 || s == *steps {
			fmt.Printf("step %5d  t=%7.1f fs  T=%6.1f K  %s\n",
				s, float64(s)**dt, eng.Temperature(), eng.Energies())
		}
		if tw != nil && s%*trajEvery == 0 {
			if err := tw.WriteFrame(int64(s), float64(s)**dt, st.Pos); err != nil {
				log.Fatal(err)
			}
		}
	}
	if tw != nil {
		// A buffered frame or close failure means the trajectory on disk
		// is incomplete — that must not pass silently.
		err := tw.Flush()
		if cerr := trajFile.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			log.Fatalf("writing trajectory %s: %v", *trajPath, err)
		}
		fmt.Printf("wrote %d trajectory frames to %s\n", tw.Frames(), *trajPath)
	}
	if *ckptPath != "" {
		err := ckpt.AtomicWriteFile(*ckptPath, func(w io.Writer) error {
			return sysio.Save(w, sys, st)
		})
		if err != nil {
			log.Fatalf("writing checkpoint %s: %v", *ckptPath, err)
		}
		fmt.Printf("wrote snapshot at step %d to %s (continue with -in %s)\n", done, *ckptPath, *ckptPath)
	}
	if mrec != nil {
		// Close takes a final sample (so even -metricsevery 0 runs leave a
		// record) and flushes before the file is sealed.
		err := mrec.Close()
		if cerr := mfw.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			log.Fatalf("writing telemetry %s: %v", *metricsPath, err)
		}
		fmt.Printf("wrote %d telemetry samples to %s (analyze with projections -ftdc)\n",
			mrec.SampleCount(), *metricsPath)
	}
	el := time.Since(start)
	if done > 0 {
		fmt.Printf("%d steps in %v (%.2f ms/step)\n", done, el.Round(time.Millisecond),
			float64(el.Microseconds())/1e3/float64(done))
	}

	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
		err = tlog.WriteJSON(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			log.Fatalf("writing trace %s: %v", *tracePath, err)
		}
		fmt.Printf("wrote %d trace records to %s\n", len(tlog.Records), *tracePath)
	}
	if *profile {
		fmt.Println()
		gonamd.AnalyzeTrace(tlog, gonamd.ProjectionsOptions{}).WriteText(os.Stdout)
	}
}
