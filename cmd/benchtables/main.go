// Command benchtables regenerates the paper's tables and figures on the
// simulated machines and prints them alongside the published values.
//
// Usage:
//
//	benchtables                  # everything
//	benchtables -table 2         # one table (1-6)
//	benchtables -figure 1        # one figure (1-4)
//	benchtables -summary 64      # bonus: summary profile on N PEs
//	benchtables -scale           # paper-scale LB/multicast study, 16-2048 PEs
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"gonamd/internal/bench"
)

func main() {
	log.SetFlags(0)
	table := flag.Int("table", 0, "regenerate one table (1-6); 0 = all")
	figure := flag.Int("figure", 0, "regenerate one figure (1-4); 0 = all")
	summary := flag.Int("summary", 0, "print a summary profile for N PEs")
	traceOut := flag.String("trace", "", "write the raw ApoA-I DES trace (JSON lines) here, for cmd/projections")
	tracePEs := flag.Int("trace-pes", 16, "PE count for the -trace run")
	ablations := flag.Bool("ablations", false, "run the design-choice ablation study")
	baselines := flag.Bool("baselines", false, "print the decomposition scalability comparison (paper §3)")
	scale := flag.Bool("scale", false, "run the paper-scale LB/multicast comparison, 16-2048 PEs (slow)")
	flag.Parse()

	start := time.Now()
	all := *table == 0 && *figure == 0 && *summary == 0 && *traceOut == "" && !*ablations && !*baselines && !*scale

	runTable := func(n int) {
		switch n {
		case 1:
			ideal, actual, err := bench.Table1()
			check(err)
			fmt.Println(bench.FormatAudit(ideal, actual))
		case 2:
			rows, err := bench.Table2()
			check(err)
			fmt.Println(bench.FormatScaling("Table 2: ApoA-I (92,224 atoms) on ASCI-Red", rows))
		case 3:
			rows, err := bench.Table3()
			check(err)
			fmt.Println(bench.FormatScaling("Table 3: BC1 (206,617 atoms) on ASCI-Red (speedup normalized to 2 at 2 procs)", rows))
		case 4:
			rows, err := bench.Table4()
			check(err)
			fmt.Println(bench.FormatScaling("Table 4: bR (3,762 atoms) on ASCI-Red", rows))
		case 5:
			rows, err := bench.Table5()
			check(err)
			fmt.Println(bench.FormatScaling("Table 5: ApoA-I on Cray T3E-900 (speedup normalized to 4 at 4 procs)", rows))
		case 6:
			rows, err := bench.Table6()
			check(err)
			fmt.Println(bench.FormatScaling("Table 6: ApoA-I on SGI Origin 2000", rows))
		default:
			log.Fatalf("no such table: %d", n)
		}
	}
	runFigure := func(n int) {
		switch n {
		case 1:
			h, err := bench.Figure1()
			check(err)
			fmt.Println(bench.FormatHistogram("Figure 1: grainsize of nonbonded computes before splitting (paper: bimodal, max ≈ 42 ms)", h))
		case 2:
			h, err := bench.Figure2()
			check(err)
			fmt.Println(bench.FormatHistogram("Figure 2: grainsize after splitting (paper: unimodal, small max)", h))
		case 3:
			v, err := bench.Figure3()
			check(err)
			fmt.Printf("Figure 3: timeline, naive multicast — step %.1f ms, integrate+send method %.2f ms\n%s\n",
				v.StepTime*1e3, v.IntegrateSends*1e3, v.Timeline)
		case 4:
			v, err := bench.Figure4()
			check(err)
			fmt.Printf("Figure 4: timeline, optimized multicast — step %.1f ms, integrate+send method %.2f ms\n%s\n",
				v.StepTime*1e3, v.IntegrateSends*1e3, v.Timeline)
		default:
			log.Fatalf("no such figure: %d", n)
		}
	}

	switch {
	case all:
		for n := 1; n <= 6; n++ {
			runTable(n)
		}
		for n := 1; n <= 4; n++ {
			runFigure(n)
		}
	case *table != 0:
		runTable(*table)
	case *figure != 0:
		runFigure(*figure)
	}
	if *summary != 0 {
		s, err := bench.SummaryProfile(*summary)
		check(err)
		fmt.Println(s)
	}
	if *traceOut != "" {
		l, err := bench.TracedRun(*tracePEs)
		check(err)
		f, err := os.Create(*traceOut)
		check(err)
		err = l.WriteJSON(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		check(err)
		fmt.Printf("trace: %s (%d records, ApoA-I on %d PEs)\n", *traceOut, len(l.Records), *tracePEs)
	}
	if *ablations {
		peCounts := []int{256, 1024, 2048}
		rows, err := bench.Ablations(peCounts)
		check(err)
		fmt.Println(bench.FormatAblations(rows, peCounts))
	}
	if *baselines || all {
		fmt.Println(bench.BaselineComparison())
	}
	if *scale {
		s, err := bench.ScaleStudy()
		check(err)
		fmt.Println(s)
	}
	fmt.Fprintf(os.Stderr, "elapsed: %v\n", time.Since(start).Round(time.Millisecond))
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
