// Command benchjson converts `go test -bench` text output into a stable
// JSON record for tracking performance over time. It reads benchmark
// output on stdin, echoes it through unchanged (so it can sit at the end
// of a pipe without hiding the run), and writes the parsed results to the
// file given with -o.
//
// Usage:
//
//	go test -run '^$' -bench Step -benchmem ./... | benchjson -o BENCH.json
//
// Every metric a benchmark reports lands in the "metrics" map keyed by
// its unit — the standard ns/op, B/op, and allocs/op as well as custom
// b.ReportMetric units such as steps/sec or ns/pair.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"regexp"
	"strconv"
	"strings"
)

type benchmark struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type report struct {
	Schema     string      `json:"schema"`
	Benchmarks []benchmark `json:"benchmarks"`
}

// benchLine matches one result line: name (with optional -procs suffix),
// iteration count, then tab-separated "value unit" metric pairs.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-(\d+))?\s+(\d+)\s+(\S.*)$`)

func main() {
	log.SetFlags(0)
	out := flag.String("o", "", "output JSON file (required)")
	flag.Parse()
	if *out == "" {
		log.Fatal("benchjson: -o output file is required")
	}

	rep := report{Schema: "gonamd-bench/1"}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		procs := 1
		if m[2] != "" {
			procs, _ = strconv.Atoi(m[2])
		}
		iters, err := strconv.ParseInt(m[3], 10, 64)
		if err != nil {
			continue
		}
		b := benchmark{Name: m[1], Procs: procs, Iterations: iters, Metrics: map[string]float64{}}
		fields := strings.Fields(m[4])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			b.Metrics[fields[i+1]] = v
		}
		if len(b.Metrics) > 0 {
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatalf("benchjson: reading stdin: %v", err)
	}
	if len(rep.Benchmarks) == 0 {
		log.Fatal("benchjson: no benchmark results found on stdin")
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(rep.Benchmarks), *out)
}
