package main

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

func mkReport(vals map[string]float64, metric string) *report {
	r := &report{Schema: benchSchema}
	for name, v := range vals {
		r.Benchmarks = append(r.Benchmarks, benchmark{
			Name: name, Procs: 1, Iterations: 10,
			Metrics: map[string]float64{metric: v},
		})
	}
	return r
}

func TestCompareWithinTolerance(t *testing.T) {
	old := mkReport(map[string]float64{"BenchmarkStepPar": 100, "BenchmarkStepParPME": 200}, "ns/op")
	fresh := mkReport(map[string]float64{"BenchmarkStepPar": 105, "BenchmarkStepParPME": 190}, "ns/op")
	rows, failed := compare(old, fresh, regexp.MustCompile("^BenchmarkStepPar"), "ns/op", 0.10)
	if failed {
		t.Fatalf("failed within tolerance: %+v", rows)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2", len(rows))
	}
}

func TestCompareRegressionFails(t *testing.T) {
	old := mkReport(map[string]float64{"BenchmarkStepPar": 100}, "ns/op")
	fresh := mkReport(map[string]float64{"BenchmarkStepPar": 125}, "ns/op")
	rows, failed := compare(old, fresh, regexp.MustCompile("^BenchmarkStepPar"), "ns/op", 0.10)
	if !failed || !rows[0].Regressed {
		t.Fatalf("25%% slowdown not flagged: %+v", rows)
	}
}

func TestCompareMissingBenchmarkFails(t *testing.T) {
	old := mkReport(map[string]float64{"BenchmarkStepPar": 100, "BenchmarkStepParPME": 200}, "ns/op")
	fresh := mkReport(map[string]float64{"BenchmarkStepPar": 100}, "ns/op")
	rows, failed := compare(old, fresh, regexp.MustCompile("^BenchmarkStepPar"), "ns/op", 0.10)
	if !failed {
		t.Fatal("vanished pinned benchmark not flagged")
	}
	var sawMissing bool
	for _, r := range rows {
		if r.Name == "BenchmarkStepParPME" && r.Missing {
			sawMissing = true
		}
	}
	if !sawMissing {
		t.Fatalf("no missing row: %+v", rows)
	}
}

func TestCompareRateMetricDirection(t *testing.T) {
	// steps/sec improves upward: dropping 25% is the regression.
	old := mkReport(map[string]float64{"BenchmarkStepPar": 1000}, "steps/sec")
	fresh := mkReport(map[string]float64{"BenchmarkStepPar": 750}, "steps/sec")
	if _, failed := compare(old, fresh, regexp.MustCompile("."), "steps/sec", 0.10); !failed {
		t.Fatal("25% rate drop not flagged")
	}
	faster := mkReport(map[string]float64{"BenchmarkStepPar": 2000}, "steps/sec")
	if rows, failed := compare(old, faster, regexp.MustCompile("."), "steps/sec", 0.10); failed {
		t.Fatalf("2x rate gain flagged as a regression: %+v", rows)
	}
}

func TestCompareUnpinnedIgnored(t *testing.T) {
	old := mkReport(map[string]float64{"BenchmarkStepPar": 100, "BenchmarkNonbondedPair": 10}, "ns/op")
	fresh := mkReport(map[string]float64{"BenchmarkStepPar": 100, "BenchmarkNonbondedPair": 50}, "ns/op")
	rows, failed := compare(old, fresh, regexp.MustCompile("^BenchmarkStepPar"), "ns/op", 0.10)
	if failed {
		t.Fatalf("unpinned 5x slowdown failed the diff: %+v", rows)
	}
	if len(rows) != 1 || rows[0].Name != "BenchmarkStepPar" {
		t.Fatalf("rows = %+v, want only the pinned benchmark", rows)
	}
}

func TestLatestBench(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"BENCH_2.json", "BENCH_10.json", "BENCH_NEW.json", "notes.txt"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := latestBench(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(got) != "BENCH_10.json" {
		t.Fatalf("latest = %s, want BENCH_10.json", got)
	}
	if _, err := latestBench(t.TempDir()); err == nil {
		t.Fatal("empty dir: want an error, got a baseline")
	}
}

func TestLoadReportRejectsWrongSchema(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(p, []byte(`{"schema":"other/9","benchmarks":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadReport(p); err == nil {
		t.Fatal("wrong schema accepted")
	}
}

// TestPinnedList: the named default pin list compiles to an anchored
// regexp that matches exactly the listed hot-path benchmarks — cluster
// and tabulated step pipelines included — and nothing else.
func TestPinnedList(t *testing.T) {
	re := regexp.MustCompile("^(" + strings.Join(pinned, "|") + ")$")
	for _, name := range []string{
		"BenchmarkStepParCluster",
		"BenchmarkStepParClusterTab",
		"BenchmarkStepParClusterTabF32",
		"BenchmarkStepParClusterPMETab",
		"BenchmarkStepParMetrics",
		"BenchmarkNonbondedClusterTab/shifted",
	} {
		if !re.MatchString(name) {
			t.Errorf("pinned benchmark %q not matched by the default pin list", name)
		}
	}
	for _, name := range []string{
		"BenchmarkMDStep",
		"BenchmarkStepParClusterTabulatedExtra",
		"BenchmarkStepParMetricsExtra",
		"BenchmarkNonbondedClusterTab/shifted/extra",
	} {
		if re.MatchString(name) {
			t.Errorf("%q unexpectedly pinned (list must stay anchored and named)", name)
		}
	}
}
