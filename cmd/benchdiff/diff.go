package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// benchmark and report mirror the gonamd-bench/1 schema written by
// cmd/benchjson.
type benchmark struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type report struct {
	Schema     string      `json:"schema"`
	Benchmarks []benchmark `json:"benchmarks"`
}

const benchSchema = "gonamd-bench/1"

func loadReport(path string) (*report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.Schema != benchSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, r.Schema, benchSchema)
	}
	return &r, nil
}

// benchFile matches the committed benchmark records, BENCH_<n>.json.
var benchFile = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// latestBench returns the highest-numbered BENCH_<n>.json in dir — the
// most recent committed baseline.
func latestBench(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	best, bestN := "", -1
	for _, e := range entries {
		m := benchFile.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		if n, err := strconv.Atoi(m[1]); err == nil && n > bestN {
			best, bestN = e.Name(), n
		}
	}
	if best == "" {
		return "", fmt.Errorf("no BENCH_<n>.json baseline in %s", dir)
	}
	return filepath.Join(dir, best), nil
}

// higherIsBetter reports the improvement direction of a metric: rates
// (steps/sec, ops/sec) improve upward, everything else (ns/op, B/op,
// allocs/op, ns/pair) improves downward.
func higherIsBetter(metric string) bool {
	return strings.HasSuffix(metric, "/sec") || strings.HasSuffix(metric, "/s")
}

// row is one pinned benchmark's comparison.
type row struct {
	Name      string
	Old, New  float64
	Delta     float64 // fractional change in the metric, signed
	Missing   bool    // pinned benchmark absent from the new run
	Regressed bool
}

// compare checks every baseline benchmark matching pin against the new
// run: the metric may not regress (in its improvement direction) by more
// than tol, and a pinned benchmark may not disappear. Returns the rows
// in name order and whether any pinned benchmark regressed or vanished.
func compare(old, fresh *report, pin *regexp.Regexp, metric string, tol float64) ([]row, bool) {
	newByName := make(map[string]benchmark, len(fresh.Benchmarks))
	for _, b := range fresh.Benchmarks {
		newByName[b.Name] = b
	}
	var rows []row
	failed := false
	for _, ob := range old.Benchmarks {
		if !pin.MatchString(ob.Name) {
			continue
		}
		ov, ok := ob.Metrics[metric]
		if !ok {
			continue // baseline never recorded this metric for this benchmark
		}
		nb, ok := newByName[ob.Name]
		if !ok {
			rows = append(rows, row{Name: ob.Name, Old: ov, Missing: true, Regressed: true})
			failed = true
			continue
		}
		nv, ok := nb.Metrics[metric]
		if !ok {
			rows = append(rows, row{Name: ob.Name, Old: ov, Missing: true, Regressed: true})
			failed = true
			continue
		}
		r := row{Name: ob.Name, Old: ov, New: nv}
		if ov != 0 {
			r.Delta = (nv - ov) / ov
		}
		if higherIsBetter(metric) {
			r.Regressed = nv < ov*(1-tol)
		} else {
			r.Regressed = nv > ov*(1+tol)
		}
		failed = failed || r.Regressed
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
	return rows, failed
}
