// Command benchdiff guards the hot path against performance regressions:
// it compares a fresh benchmark run (benchjson output) against the
// latest committed BENCH_<n>.json baseline and fails if any pinned
// benchmark regressed beyond tolerance or disappeared.
//
// Usage:
//
//	make benchdiff
//	benchdiff -new BENCH_NEW.json                      # vs latest BENCH_<n>.json
//	benchdiff -new BENCH_NEW.json -old BENCH_3.json -tol 0.05
//	benchdiff -new BENCH_NEW.json -pin 'Step' -metric steps/sec
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"regexp"
	"strings"
)

// pinned is the named list of hot-path benchmarks that may not regress:
// the sequential and batched-parallel step pipelines, the cluster
// pipeline in every numerical mode (analytic, fp32-mixed, tabulated),
// and the full-electrostatics configurations. A name only participates
// once both reports carry it, so pinning a benchmark here before the
// next BENCH_<n>.json lands is safe.
var pinned = []string{
	"BenchmarkStepSeq",
	"BenchmarkStepSeqCluster",
	"BenchmarkStepPar",
	"BenchmarkStepParMetrics",
	"BenchmarkStepParPME",
	"BenchmarkStepParCluster",
	"BenchmarkStepParClusterF32",
	"BenchmarkStepParClusterTab",
	"BenchmarkStepParClusterTabF32",
	"BenchmarkStepParClusterPME",
	"BenchmarkStepParClusterPMETab",
	"BenchmarkNonbondedCluster/8x8",
	"BenchmarkNonbondedClusterTab/shifted",
	"BenchmarkNonbondedClusterTab/ewald",
}

func main() {
	log.SetFlags(0)
	oldPath := flag.String("old", "", "baseline report (default: the highest BENCH_<n>.json here)")
	newPath := flag.String("new", "", "fresh report from benchjson (required)")
	pin := flag.String("pin", "", "regexp of pinned benchmarks that may not regress (default: the named hot-path list)")
	metric := flag.String("metric", "ns/op", "metric to compare")
	tol := flag.Float64("tol", 0.10, "allowed fractional regression before failing")
	flag.Parse()
	if *newPath == "" {
		log.Fatal("benchdiff: -new report is required")
	}
	if *oldPath == "" {
		p, err := latestBench(".")
		if err != nil {
			log.Fatalf("benchdiff: %v", err)
		}
		*oldPath = p
	}
	pinExpr := *pin
	if pinExpr == "" {
		pinExpr = "^(" + strings.Join(pinned, "|") + ")$"
	}
	pinRe, err := regexp.Compile(pinExpr)
	if err != nil {
		log.Fatalf("benchdiff: bad -pin: %v", err)
	}
	old, err := loadReport(*oldPath)
	if err != nil {
		log.Fatalf("benchdiff: %v", err)
	}
	fresh, err := loadReport(*newPath)
	if err != nil {
		log.Fatalf("benchdiff: %v", err)
	}

	rows, failed := compare(old, fresh, pinRe, *metric, *tol)
	if len(rows) == 0 {
		log.Fatalf("benchdiff: no benchmark in %s matches %q with metric %q", *oldPath, *pin, *metric)
	}
	fmt.Printf("baseline %s vs %s (metric %s, tolerance %.0f%%)\n",
		*oldPath, *newPath, *metric, *tol*100)
	for _, r := range rows {
		switch {
		case r.Missing:
			fmt.Printf("  FAIL %-40s missing from new run (baseline %.4g)\n", r.Name, r.Old)
		case r.Regressed:
			fmt.Printf("  FAIL %-40s %.4g -> %.4g (%+.1f%%)\n", r.Name, r.Old, r.New, r.Delta*100)
		default:
			fmt.Printf("  ok   %-40s %.4g -> %.4g (%+.1f%%)\n", r.Name, r.Old, r.New, r.Delta*100)
		}
	}
	if failed {
		fmt.Println("benchdiff: pinned benchmarks regressed")
		os.Exit(1)
	}
	fmt.Println("benchdiff: no regressions")
}
