package gonamd_test

import (
	"sync"
	"testing"
	"time"

	"gonamd"
)

// The step benchmarks run an ApoA-I-scale synthetic system: a ~92,000
// atom water box at the paper benchmark's atom count (92,224), with the
// production 9 Å cutoff. The actual ApoA1 preset is not usable here —
// its unminimized synthetic packing has steric overlaps that blow up
// within a few femtoseconds — so an equally sized water box stands in,
// briefly minimized (once, shared across benchmarks) so the dynamics
// the timer sees are thermally calm.
const (
	benchSide   = 97.3 // Å → ~92.3k atoms at water density
	benchCutoff = 9.0
	benchSkin   = 1.5
	benchDt     = 0.5
)

var (
	benchOnce sync.Once
	benchSys  *gonamd.System
	benchSt   *gonamd.State // minimized; clone before use
	benchFF   *gonamd.ForceField
)

func benchSystem(b *testing.B) (*gonamd.System, *gonamd.State, *gonamd.ForceField) {
	b.Helper()
	benchOnce.Do(func() {
		sys, st, err := gonamd.BuildSystem(gonamd.WaterBoxSpec(benchSide, 11))
		if err != nil {
			panic(err)
		}
		ff := gonamd.StandardForceField(benchCutoff)
		eng, err := gonamd.NewSequential(sys, ff, st, gonamd.WithPairlist(benchSkin))
		if err != nil {
			panic(err)
		}
		eng.Minimize(30, 0.2)
		benchSys, benchSt, benchFF = sys, st, ff
	})
	return benchSys, benchSt.Clone(), benchFF
}

func reportSteps(b *testing.B) {
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "steps/sec")
}

// BenchmarkStepPar is the headline number: the full batched pipeline —
// per-task Verlet block lists, SoA batch kernel, sparse force reduction —
// at 8 workers.
func BenchmarkStepPar(b *testing.B) {
	sys, st, ff := benchSystem(b)
	eng, err := gonamd.NewParallel(sys, ff, st, 8,
		gonamd.WithBlockLists(benchSkin), gonamd.WithRebalanceEvery(0))
	if err != nil {
		b.Fatal(err)
	}
	eng.ComputeForces() // build lists and warm per-worker buffers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step(benchDt)
	}
	b.StopTimer()
	reportSteps(b)
}

// BenchmarkStepParTraced is BenchmarkStepPar with a trace log attached:
// the per-phase instrumentation must stay within 0 allocs/step and add
// only marginal (≤2%) wall overhead.
func BenchmarkStepParTraced(b *testing.B) {
	sys, st, ff := benchSystem(b)
	tlog := gonamd.NewTraceLog()
	eng, err := gonamd.NewParallel(sys, ff, st, 8,
		gonamd.WithBlockLists(benchSkin), gonamd.WithRebalanceEvery(0),
		gonamd.WithTrace(tlog))
	if err != nil {
		b.Fatal(err)
	}
	eng.ComputeForces()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step(benchDt)
	}
	b.StopTimer()
	reportSteps(b)
	rep := gonamd.AnalyzeTrace(tlog, gonamd.ProjectionsOptions{})
	b.ReportMetric(rep.Utilization*100, "util%")
}

// BenchmarkStepParMetrics is BenchmarkStepPar with a 1 Hz FTDC metrics
// recorder attached: the telemetry contract is 0 allocs/step and ≤2%
// wall overhead — publication is a handful of atomic word stores, and
// the sampler goroutine touches only its own ring.
func BenchmarkStepParMetrics(b *testing.B) {
	sys, st, ff := benchSystem(b)
	rec := gonamd.NewMetricsRecorder(time.Second)
	defer rec.Close()
	eng, err := gonamd.NewParallel(sys, ff, st, 8,
		gonamd.WithBlockLists(benchSkin), gonamd.WithRebalanceEvery(0),
		gonamd.WithMetricsRecorder(rec))
	if err != nil {
		b.Fatal(err)
	}
	eng.ComputeForces()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step(benchDt)
	}
	b.StopTimer()
	reportSteps(b)
}

// BenchmarkStepParBaseline is the pre-pipeline configuration of the
// parallel engine — rebinning and screening every candidate pair every
// step, no cached lists — kept as the reference the block-list speedup
// is measured against.
func BenchmarkStepParBaseline(b *testing.B) {
	sys, st, ff := benchSystem(b)
	eng, err := gonamd.NewParallel(sys, ff, st, 8, gonamd.WithRebalanceEvery(0))
	if err != nil {
		b.Fatal(err)
	}
	eng.ComputeForces()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step(benchDt)
	}
	b.StopTimer()
	reportSteps(b)
}

// BenchmarkStepParPME is the full-electrostatics configuration: the same
// batched pipeline with the erfc real-space kernel plus the reciprocal
// mesh sum (smooth PME on the worker pool) amortized over a 4-step
// impulse-MTS cycle.
func BenchmarkStepParPME(b *testing.B) {
	sys, st, ff := benchSystem(b)
	eng, err := gonamd.NewParallel(sys, ff, st, 8,
		gonamd.WithBlockLists(benchSkin), gonamd.WithRebalanceEvery(0),
		gonamd.WithPME(1.0, 3.12/benchCutoff, 4))
	if err != nil {
		b.Fatal(err)
	}
	eng.ComputeForces()
	eng.RecipForces() // prime the reciprocal solver's mesh and spline caches
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step(benchDt)
	}
	b.StopTimer()
	reportSteps(b)
}

// BenchmarkStepParCluster is the cluster-pair pipeline at 8 workers:
// 8×8 cluster pair lists with a 0.5 Å skin, evaluated by the M×N kernel
// (hoisted per-pair invariants, per-cluster accumulation, slot-force
// flush into the sparse deterministic reduction). The speedup over
// BenchmarkStepPar comes from the cluster layout — no per-candidate
// batch building, branch-free operand staging per tile — and from the
// tighter skin, which the amortized rebuild cost makes a net win at
// this box size (see WithClusterSkin).
func BenchmarkStepParCluster(b *testing.B) {
	sys, st, ff := benchSystem(b)
	eng, err := gonamd.NewParallel(sys, ff, st, 8,
		gonamd.WithClusterLists(8, 8), gonamd.WithClusterSkin(0.5),
		gonamd.WithRebalanceEvery(0))
	if err != nil {
		b.Fatal(err)
	}
	eng.ComputeForces() // build lists and warm per-worker buffers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step(benchDt)
	}
	b.StopTimer()
	reportSteps(b)
}

// BenchmarkStepParClusterF32 is BenchmarkStepParCluster on the
// mixed-precision fast path: float32 pair math over the cluster tiles,
// float64 per-cluster reduction (see DESIGN.md for the accuracy and
// determinism contract).
func BenchmarkStepParClusterF32(b *testing.B) {
	sys, st, ff := benchSystem(b)
	eng, err := gonamd.NewParallel(sys, ff, st, 8,
		gonamd.WithClusterLists(8, 8), gonamd.WithClusterSkin(0.5),
		gonamd.WithMixedPrecision(), gonamd.WithRebalanceEvery(0))
	if err != nil {
		b.Fatal(err)
	}
	eng.ComputeForces()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step(benchDt)
	}
	b.StopTimer()
	reportSteps(b)
}

// BenchmarkStepParClusterTab is BenchmarkStepParCluster with the
// r²-indexed tabulated kernels: same lists, same deterministic
// reduction, but the pair loop is table lookup + FMA — no Sqrt, no
// switching branch (and no Erfc/Exp when PME is on). The default table
// resolution keeps the force error well inside the fp32-mixed envelope
// (see DESIGN.md "Tabulated kernels").
func BenchmarkStepParClusterTab(b *testing.B) {
	sys, st, ff := benchSystem(b)
	eng, err := gonamd.NewParallel(sys, ff, st, 8,
		gonamd.WithClusterLists(8, 8), gonamd.WithClusterSkin(0.5),
		gonamd.WithTabulatedKernels(0), gonamd.WithRebalanceEvery(0))
	if err != nil {
		b.Fatal(err)
	}
	eng.ComputeForces()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step(benchDt)
	}
	b.StopTimer()
	reportSteps(b)
}

// BenchmarkStepParClusterTabF32 combines the tabulated kernels with the
// mixed-precision fast path: float32 table reconstruction from the
// float32 coefficient mirror, float64 per-cluster reduction.
func BenchmarkStepParClusterTabF32(b *testing.B) {
	sys, st, ff := benchSystem(b)
	eng, err := gonamd.NewParallel(sys, ff, st, 8,
		gonamd.WithClusterLists(8, 8), gonamd.WithClusterSkin(0.5),
		gonamd.WithMixedPrecision(), gonamd.WithTabulatedKernels(0),
		gonamd.WithRebalanceEvery(0))
	if err != nil {
		b.Fatal(err)
	}
	eng.ComputeForces()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step(benchDt)
	}
	b.StopTimer()
	reportSteps(b)
}

// BenchmarkStepParClusterPME is the cluster pipeline with full
// electrostatics: erfc real-space evaluated by the analytic cluster
// kernel plus the reciprocal mesh sum on the 4-step impulse-MTS cycle.
// Paired with BenchmarkStepParClusterPMETab below, it isolates what the
// tabulated kernels buy when the real-space electrostatics actually
// contain Erfc/Exp (the shifted-Coulomb StepParCluster baseline has
// neither, so the table can only win back the Sqrt and the switching
// branch there).
func BenchmarkStepParClusterPME(b *testing.B) {
	sys, st, ff := benchSystem(b)
	eng, err := gonamd.NewParallel(sys, ff, st, 8,
		gonamd.WithClusterLists(8, 8), gonamd.WithClusterSkin(0.5),
		gonamd.WithPME(1.0, 3.12/benchCutoff, 4),
		gonamd.WithRebalanceEvery(0))
	if err != nil {
		b.Fatal(err)
	}
	eng.ComputeForces()
	eng.RecipForces()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step(benchDt)
	}
	b.StopTimer()
	reportSteps(b)
}

// BenchmarkStepParClusterPMETab is BenchmarkStepParClusterPME with the
// tabulated real-space kernel: the table folds erfc(βr)/r at build
// time, so the pair loop runs no Sqrt, no Erfc, no Exp.
func BenchmarkStepParClusterPMETab(b *testing.B) {
	sys, st, ff := benchSystem(b)
	eng, err := gonamd.NewParallel(sys, ff, st, 8,
		gonamd.WithClusterLists(8, 8), gonamd.WithClusterSkin(0.5),
		gonamd.WithPME(1.0, 3.12/benchCutoff, 4),
		gonamd.WithTabulatedKernels(0),
		gonamd.WithRebalanceEvery(0))
	if err != nil {
		b.Fatal(err)
	}
	eng.ComputeForces()
	eng.RecipForces()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step(benchDt)
	}
	b.StopTimer()
	reportSteps(b)
}

// BenchmarkStepSeqCluster is the sequential engine on the same 8×8
// cluster lists and 0.5 Å skin, for the single-processor end of the
// cluster scaling story.
func BenchmarkStepSeqCluster(b *testing.B) {
	sys, st, ff := benchSystem(b)
	eng, err := gonamd.NewSequential(sys, ff, st,
		gonamd.WithClusterLists(8, 8), gonamd.WithClusterSkin(0.5))
	if err != nil {
		b.Fatal(err)
	}
	eng.ComputeForces()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step(benchDt)
	}
	b.StopTimer()
	reportSteps(b)
}

// BenchmarkStepSeq is the sequential engine with its Verlet pairlist on
// the same system, for the single-processor baseline of the scaling
// story.
func BenchmarkStepSeq(b *testing.B) {
	sys, st, ff := benchSystem(b)
	eng, err := gonamd.NewSequential(sys, ff, st, gonamd.WithPairlist(benchSkin))
	if err != nil {
		b.Fatal(err)
	}
	eng.ComputeForces()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step(benchDt)
	}
	b.StopTimer()
	reportSteps(b)
}
