package gonamd_test

import (
	"math"
	"testing"

	"gonamd"
)

// TestClusterF32ForceAccuracyApoA1: on the ApoA-I benchmark box, the
// mixed-precision cluster kernel's per-atom forces must track the
// float64 cluster kernel within a pinned relative bound. Pair math runs
// in float32 but every partial sum crosses into float64 at cluster
// granularity (≤ 8 terms), so the error stays near single-precision
// rounding instead of growing with the ~300-pair per-atom sums.
func TestClusterF32ForceAccuracyApoA1(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the ApoA-I box")
	}
	sys, st, err := gonamd.BuildSystem(gonamd.ApoA1Spec())
	if err != nil {
		t.Fatal(err)
	}
	ff := gonamd.StandardForceField(9.0)
	// Relax the as-built contacts first: the synthetic structure starts
	// on near-singular r⁻¹² clashes whose float32 evaluation error would
	// swamp the steady-state accuracy this test pins. The minimizer
	// itself runs on the float64 cluster path for speed.
	m, err := gonamd.NewSequential(sys, ff, st, gonamd.WithClusterLists(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	m.Minimize(60, 0.2)

	eval := func(mixed bool) ([]gonamd.V3, gonamd.Energies) {
		opts := []gonamd.Option{gonamd.WithClusterLists(4, 4)}
		if mixed {
			opts = append(opts, gonamd.WithMixedPrecision())
		}
		e, err := gonamd.NewSequential(sys, ff, st.Clone(), opts...)
		if err != nil {
			t.Fatal(err)
		}
		en := e.ComputeForces()
		return e.Forces(), en
	}
	f64F, en64 := eval(false)
	f32F, en32 := eval(true)

	// Relative to the force scale of the configuration: per-atom
	// absolute errors on near-cancelling small forces are meaningless.
	scale := 0.0
	for i := range f64F {
		if n := f64F[i].Norm(); n > scale {
			scale = n
		}
	}
	worst := 0.0
	for i := range f64F {
		if d := f32F[i].Sub(f64F[i]).Norm() / scale; d > worst {
			worst = d
		}
	}
	if worst > 5e-5 {
		t.Errorf("worst per-atom force error %.3g of the force scale exceeds the 5e-5 bound", worst)
	}
	for _, e := range []struct {
		name     string
		f32, f64 float64
	}{{"vdw", en32.VdW, en64.VdW}, {"elec", en32.Elec, en64.Elec}} {
		if d := math.Abs(e.f32-e.f64) / (1 + math.Abs(e.f64)); d > 1e-5 {
			t.Errorf("%s energy relative error %.3g exceeds 1e-5 (%.6f vs %.6f)", e.name, d, e.f32, e.f64)
		}
	}
}

// TestClusterF32NVEDrift: 500 steps of NVE dynamics under the
// mixed-precision cluster kernels must conserve total energy within the
// same pinned bound the PME drift test uses — single-precision pair
// math must not introduce a systematic energy leak.
func TestClusterF32NVEDrift(t *testing.T) {
	if testing.Short() {
		t.Skip("long NVE run")
	}
	sys, st, err := gonamd.BuildSystem(gonamd.WaterBoxSpec(12, 11))
	if err != nil {
		t.Fatal(err)
	}
	ff := gonamd.StandardForceField(5.5)
	// Relax the synthetic starting structure first (see
	// TestPMENVEDriftDifferential): as-built contacts dwarf any drift.
	m, err := gonamd.NewSequential(sys, ff, st)
	if err != nil {
		t.Fatal(err)
	}
	m.Minimize(200, 0.2)

	e, err := gonamd.NewSequential(sys, ff, st,
		gonamd.WithClusterLists(4, 4), gonamd.WithMixedPrecision())
	if err != nil {
		t.Fatal(err)
	}
	const steps, dt = 500, 0.5
	e0 := e.Energies().Total()
	kin := e.Energies().Kinetic
	worst := 0.0
	for s := 0; s < steps; s++ {
		e.Step(dt)
		if d := math.Abs(e.Energies().Total() - e0); d > worst {
			worst = d
		}
	}
	if e.ClusterRebuilds() < 2 {
		t.Fatalf("run exercised %d list rebuilds, want ≥ 2", e.ClusterRebuilds())
	}
	// Pinned bound: total-energy excursions stay under 2% of the kinetic
	// energy scale over the whole run.
	if bound := 0.02 * kin; worst > bound {
		t.Fatalf("NVE drift %.4f kcal/mol exceeds bound %.4f (kinetic %.2f)", worst, bound, kin)
	}
}
