module gonamd

go 1.22
