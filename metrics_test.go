package gonamd_test

import (
	"testing"

	"gonamd"
)

// stepsField is the index of the cumulative step counter in the
// engine telemetry schema.
func stepsField() int { return gonamd.EngineMetricsSchema().FieldIndex("steps") }

// metricsAllocSystem builds the same ~12k-atom box the par engine's
// zero-alloc suite uses, through the public facade.
func metricsAllocSystem(t *testing.T) (*gonamd.System, *gonamd.State, *gonamd.ForceField) {
	t.Helper()
	sys, st, err := gonamd.BuildSystem(gonamd.WaterBoxSpec(16, 7))
	if err != nil {
		t.Fatal(err)
	}
	return sys, st, gonamd.StandardForceField(7.0)
}

// TestStepZeroAllocsMetrics guards the telemetry overhead contract:
// with a metrics recorder attached (manual sampling, so the measurement
// is deterministic), the parallel engine's steady-state step must stay
// at 0 allocs, and the sequential engine must allocate no more than it
// does unmetered. Publication is a handful of atomic word stores per
// step — nothing on the heap.
func TestStepZeroAllocsMetrics(t *testing.T) {
	sys, st, ff := metricsAllocSystem(t)

	rec := gonamd.NewMetricsRecorder(0)
	par, err := gonamd.NewParallel(sys, ff, cloneState(st), 8,
		gonamd.WithBlockLists(1.5), gonamd.WithRebalanceEvery(0),
		gonamd.WithMetricsRecorder(rec))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		par.Step(0.5)
	}
	if allocs := testing.AllocsPerRun(20, func() { par.Step(0.5) }); allocs != 0 {
		t.Fatalf("metered parallel Step allocates: %v allocs/step, want 0", allocs)
	}
	rec.SampleNow()
	last, ok := rec.Last()
	if !ok || last.Values[stepsField()] <= 0 {
		t.Fatalf("recorder sample after stepping: ok=%v values=%v, want steps > 0", ok, last.Values)
	}

	base, err := gonamd.NewSequential(sys, ff, cloneState(st), gonamd.WithPairlist(1.5))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		base.Step(0.5)
	}
	baseAllocs := testing.AllocsPerRun(20, func() { base.Step(0.5) })

	rec2 := gonamd.NewMetricsRecorder(0)
	met, err := gonamd.NewSequential(sys, ff, cloneState(st), gonamd.WithPairlist(1.5),
		gonamd.WithMetricsRecorder(rec2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		met.Step(0.5)
	}
	if metAllocs := testing.AllocsPerRun(20, func() { met.Step(0.5) }); metAllocs > baseAllocs {
		t.Fatalf("metered sequential Step allocates %v/step, unmetered %v/step — metering must add nothing",
			metAllocs, baseAllocs)
	}
}

// TestMetricsMatchesUnmetered: attaching a metrics recorder must not
// perturb the trajectory — telemetry only observes. Both engines,
// bitwise position compare against an unmetered twin.
func TestMetricsMatchesUnmetered(t *testing.T) {
	sys, st, ff := confSetup(t)

	t.Run("parallel", func(t *testing.T) {
		plain, err := gonamd.NewParallel(sys, ff, cloneState(st), 4,
			gonamd.WithBlockLists(1.5), gonamd.WithRebalanceEvery(0))
		if err != nil {
			t.Fatal(err)
		}
		rec := gonamd.NewMetricsRecorder(0)
		metered, err := gonamd.NewParallel(sys, ff, cloneState(st), 4,
			gonamd.WithBlockLists(1.5), gonamd.WithRebalanceEvery(0),
			gonamd.WithMetricsRecorder(rec))
		if err != nil {
			t.Fatal(err)
		}
		a, b := runSteps(plain, 5), runSteps(metered, 5)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("atom %d: metering changed the trajectory: %v vs %v", i, a[i], b[i])
			}
		}
		rec.SampleNow()
		last, ok := rec.Last()
		if !ok || last.Values[stepsField()] != 5 {
			t.Fatalf("recorder after 5 steps: ok=%v steps=%v, want 5", ok, last.Values)
		}
	})

	t.Run("sequential", func(t *testing.T) {
		plain, err := gonamd.NewSequential(sys, ff, cloneState(st), gonamd.WithPairlist(1.5))
		if err != nil {
			t.Fatal(err)
		}
		rec := gonamd.NewMetricsRecorder(0)
		metered, err := gonamd.NewSequential(sys, ff, cloneState(st), gonamd.WithPairlist(1.5),
			gonamd.WithMetricsRecorder(rec))
		if err != nil {
			t.Fatal(err)
		}
		a, b := runSteps(plain, 5), runSteps(metered, 5)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("atom %d: metering changed the trajectory: %v vs %v", i, a[i], b[i])
			}
		}
		rec.SampleNow()
		last, ok := rec.Last()
		if !ok || last.Values[stepsField()] != 5 {
			t.Fatalf("recorder after 5 steps: ok=%v steps=%v, want 5", ok, last.Values)
		}
	})
}

// TestMetricsWithTrace: metrics and a full trace log compose — the
// trace keeps its records, the recorder its phase times, and the two
// report consistent nonbonded totals (the phase accumulators feed both).
func TestMetricsWithTrace(t *testing.T) {
	sys, st, ff := confSetup(t)
	rec := gonamd.NewMetricsRecorder(0)
	tlog := gonamd.NewTraceLog()
	e, err := gonamd.NewParallel(sys, ff, cloneState(st), 4,
		gonamd.WithBlockLists(1.5), gonamd.WithRebalanceEvery(0),
		gonamd.WithTrace(tlog), gonamd.WithMetricsRecorder(rec))
	if err != nil {
		t.Fatal(err)
	}
	runSteps(e, 5)
	if len(tlog.Records) == 0 {
		t.Fatal("trace recorded nothing with metrics attached")
	}
	rec.SampleNow()
	last, ok := rec.Last()
	if !ok {
		t.Fatal("no metrics sample")
	}
	if nb := last.Values[gonamd.EngineMetricsSchema().FieldIndex("nonbonded_s")]; nb <= 0 {
		t.Errorf("nonbonded phase time %g, want > 0 (phase accumulators must feed the recorder)", nb)
	}
}
