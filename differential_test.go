package gonamd_test

import (
	"math"
	"reflect"
	"testing"

	"gonamd"
)

// diffSystem builds a moderately sized water box once for the
// differential tests.
func diffSystem(t *testing.T) (*gonamd.System, *gonamd.State, *gonamd.ForceField) {
	t.Helper()
	sys, st, err := gonamd.BuildSystem(gonamd.WaterBoxSpec(16, 42))
	if err != nil {
		t.Fatal(err)
	}
	return sys, st, gonamd.StandardForceField(7.0)
}

// TestDifferentialForcesAcrossEngines: every engine configuration —
// sequential direct, sequential with a Verlet pairlist, and the
// parallel engine at 1/2/4/8 workers — must agree on forces and
// energies for the same configuration within floating-point reduction
// tolerance.
func TestDifferentialForcesAcrossEngines(t *testing.T) {
	sys, st, ff := diffSystem(t)

	ref, err := gonamd.NewSequential(sys, ff, st.Clone())
	if err != nil {
		t.Fatal(err)
	}
	refEn := ref.ComputeForces()
	refF := ref.Forces()

	check := func(name string, en gonamd.Energies, forces []gonamd.V3) {
		t.Helper()
		if math.Abs(en.Potential()-refEn.Potential()) > 1e-7*(1+math.Abs(refEn.Potential())) {
			t.Errorf("%s: potential %v, sequential direct %v", name, en.Potential(), refEn.Potential())
		}
		for i, f := range forces {
			d := f.Sub(refF[i]).Norm()
			if d > 1e-7*(1+refF[i].Norm()) {
				t.Fatalf("%s: force on atom %d off by %v (%v vs %v)", name, i, d, f, refF[i])
			}
		}
	}

	for _, skin := range []float64{1.0, 1.5} {
		listed, err := gonamd.NewSequential(sys, ff, st.Clone(), gonamd.WithPairlist(skin))
		if err != nil {
			t.Fatal(err)
		}
		check("seq+pairlist", listed.ComputeForces(), listed.Forces())
	}

	for _, workers := range []int{1, 2, 4, 8} {
		par, err := gonamd.NewParallel(sys, ff, st.Clone(), workers)
		if err != nil {
			t.Fatal(err)
		}
		check("parallel", par.ComputeForces(), par.Forces())

		blocked, err := gonamd.NewParallel(sys, ff, st.Clone(), workers, gonamd.WithBlockLists(1.5))
		if err != nil {
			t.Fatal(err)
		}
		check("parallel+blocklists", blocked.ComputeForces(), blocked.Forces())
	}
}

// TestDifferentialTrajectories: short dynamics must stay consistent
// between the sequential engine (with and without pairlist) and the
// parallel engine at several worker counts.
func TestDifferentialTrajectories(t *testing.T) {
	sys, st, ff := diffSystem(t)
	const steps, dt = 10, 0.5

	// Engines advance the State they are built on in place, so keep a
	// handle on each clone.
	refSt := st.Clone()
	ref, err := gonamd.NewSequential(sys, ff, refSt)
	if err != nil {
		t.Fatal(err)
	}
	ref.Run(steps, dt)
	refPos := refSt.Pos

	compare := func(name string, pos []gonamd.V3, tol float64) {
		t.Helper()
		worst := 0.0
		for i := range pos {
			if d := pos[i].Sub(refPos[i]).Norm(); d > worst {
				worst = d
			}
		}
		if worst > tol {
			t.Errorf("%s drifted %v Å from the sequential trajectory (tol %v)", name, worst, tol)
		}
	}

	listedSt := st.Clone()
	listed, err := gonamd.NewSequential(sys, ff, listedSt, gonamd.WithPairlist(1.5))
	if err != nil {
		t.Fatal(err)
	}
	listed.Run(steps, dt)
	compare("seq+pairlist", listedSt.Pos, 1e-6)

	for _, workers := range []int{1, 2, 4, 8} {
		parSt := st.Clone()
		par, err := gonamd.NewParallel(sys, ff, parSt, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < steps; i++ {
			par.Step(dt)
		}
		compare("parallel", parSt.Pos, 1e-6)

		blockedSt := st.Clone()
		blocked, err := gonamd.NewParallel(sys, ff, blockedSt, workers, gonamd.WithBlockLists(1.5))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < steps; i++ {
			blocked.Step(dt)
		}
		compare("parallel+blocklists", blockedSt.Pos, 1e-6)
	}
}

// TestParallelBitwiseDeterminism: the parallel engine must be exactly
// reproducible — two runs with the same worker count produce bitwise
// identical positions and velocities, for every worker count.
func TestParallelBitwiseDeterminism(t *testing.T) {
	sys, st, ff := diffSystem(t)
	const steps, dt = 10, 0.5
	for _, workers := range []int{1, 2, 4, 8} {
		run := func(blockLists bool) *gonamd.State {
			parSt := st.Clone()
			var opts []gonamd.Option
			if blockLists {
				opts = append(opts, gonamd.WithBlockLists(1.5))
			}
			par, err := gonamd.NewParallel(sys, ff, parSt, workers, opts...)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < steps; i++ {
				par.Step(dt)
			}
			return parSt
		}
		for _, blockLists := range []bool{false, true} {
			a, b := run(blockLists), run(blockLists)
			if !reflect.DeepEqual(a.Pos, b.Pos) {
				t.Errorf("%d workers (blockLists=%v): positions not bitwise reproducible", workers, blockLists)
			}
			if !reflect.DeepEqual(a.Vel, b.Vel) {
				t.Errorf("%d workers (blockLists=%v): velocities not bitwise reproducible", workers, blockLists)
			}
		}
	}
}

// TestDifferentialClusterForces: cluster mode must agree with the
// sequential direct engine within reduction tolerance, and — the bitwise
// claim — the optimized M×N kernel must produce forces bitwise identical
// to the scalar-kernel replay (forcefield.NonbondedClusterRef, which
// evaluates the very same cluster list pair-by-pair through
// ForceField.Nonbonded) through the full engine pipeline: sequential and
// parallel at 1/2/4/8 workers.
func TestDifferentialClusterForces(t *testing.T) {
	sys, st, ff := diffSystem(t)

	ref, err := gonamd.NewSequential(sys, ff, st.Clone())
	if err != nil {
		t.Fatal(err)
	}
	refEn := ref.ComputeForces()
	refF := ref.Forces()

	check := func(name string, en gonamd.Energies, forces []gonamd.V3) {
		t.Helper()
		if math.Abs(en.Potential()-refEn.Potential()) > 1e-7*(1+math.Abs(refEn.Potential())) {
			t.Errorf("%s: potential %v, sequential direct %v", name, en.Potential(), refEn.Potential())
		}
		for i, f := range forces {
			if d := f.Sub(refF[i]).Norm(); d > 1e-7*(1+refF[i].Norm()) {
				t.Fatalf("%s: force on atom %d off by %v (%v vs %v)", name, i, d, f, refF[i])
			}
		}
	}
	snapshot := func(forces []gonamd.V3) []gonamd.V3 {
		out := make([]gonamd.V3, len(forces))
		copy(out, forces)
		return out
	}

	for _, mn := range [][2]int{{4, 4}, {4, 8}} {
		seqCl, err := gonamd.NewSequential(sys, ff, st.Clone(), gonamd.WithClusterLists(mn[0], mn[1]))
		if err != nil {
			t.Fatal(err)
		}
		check("seq+clusters", seqCl.ComputeForces(), seqCl.Forces())
		opt := snapshot(seqCl.Forces())
		seqCl.UseReferenceClusterKernel(true)
		seqCl.ComputeForces()
		if !reflect.DeepEqual(opt, seqCl.Forces()) {
			t.Fatalf("seq %dx%d: optimized kernel not bitwise identical to scalar replay", mn[0], mn[1])
		}

		for _, workers := range []int{1, 2, 4, 8} {
			parCl, err := gonamd.NewParallel(sys, ff, st.Clone(), workers, gonamd.WithClusterLists(mn[0], mn[1]))
			if err != nil {
				t.Fatal(err)
			}
			check("parallel+clusters", parCl.ComputeForces(), parCl.Forces())
			opt := snapshot(parCl.Forces())
			parCl.UseReferenceClusterKernel(true)
			parCl.ComputeForces()
			if !reflect.DeepEqual(opt, parCl.Forces()) {
				t.Fatalf("par %dx%d workers=%d: optimized kernel not bitwise identical to scalar replay",
					mn[0], mn[1], workers)
			}
		}
	}
}

// TestClusterRebuildVsReplay: a warm engine (cached cluster list, reused
// builder scratch, replayed steps behind it) that is forced to rebuild
// must continue bitwise identically to a fresh engine built at the same
// positions — proving the cluster list is a pure function of the
// positions and that no hidden state leaks from cached-replay steps into
// rebuilds. (Lists built at *different* positions legitimately differ in
// accumulation order, so that is the strongest bitwise statement there
// is; see DESIGN.md, "Cluster kernels & precision contract".)
func TestClusterRebuildVsReplay(t *testing.T) {
	sys, st, ff := diffSystem(t)
	const dt = 0.5

	type clusterEngine interface {
		gonamd.Engine
		ClusterRebuilds() int
	}

	run := func(name string, mk func(s *gonamd.State) clusterEngine) {
		aSt := st.Clone()
		warm := mk(aSt)
		warm.ComputeForces() // first build
		if warm.ClusterRebuilds() != 1 {
			t.Fatalf("%s: expected first evaluation to build, got %d builds", name, warm.ClusterRebuilds())
		}
		// Jiggle within the drift bound: these evaluations must replay
		// the cached list, leaving warm scratch and guard history behind.
		for k := 0; k < 3; k++ {
			for i := range aSt.Pos {
				aSt.Pos[i] = aSt.Pos[i].Add(gonamd.V3{X: 1e-3, Y: -1e-3, Z: 1e-3})
			}
			warm.Invalidate()
			warm.ComputeForces()
		}
		if warm.ClusterRebuilds() != 1 {
			t.Fatalf("%s: jiggles were meant to replay, got %d builds", name, warm.ClusterRebuilds())
		}
		// Kick one atom past skin/2: the next evaluation must rebuild.
		aSt.Pos[0] = aSt.Pos[0].Add(gonamd.V3{X: 2, Y: 0, Z: 0})
		warm.Invalidate()
		warm.ComputeForces()
		if warm.ClusterRebuilds() != 2 {
			t.Fatalf("%s: kick was meant to rebuild, got %d builds", name, warm.ClusterRebuilds())
		}
		warmF := make([]gonamd.V3, len(warm.Forces()))
		copy(warmF, warm.Forces())

		// A fresh engine built at the identical positions must produce the
		// warm engine's rebuild bitwise, and continue bitwise under
		// dynamics (same list, same rebuild schedule).
		bSt := aSt.Clone()
		fresh := mk(bSt)
		fresh.ComputeForces()
		if !reflect.DeepEqual(warmF, fresh.Forces()) {
			t.Errorf("%s: warm rebuild not bitwise identical to fresh build", name)
		}
		for i := 0; i < 4; i++ {
			warm.Step(dt)
			fresh.Step(dt)
		}
		if !reflect.DeepEqual(aSt.Pos, bSt.Pos) || !reflect.DeepEqual(aSt.Vel, bSt.Vel) {
			t.Errorf("%s: trajectories diverged bitwise after the shared rebuild", name)
		}
	}

	run("seq", func(s *gonamd.State) clusterEngine {
		e, err := gonamd.NewSequential(sys, ff, s, gonamd.WithClusterLists(4, 4))
		if err != nil {
			t.Fatal(err)
		}
		return e
	})

	// Parallel at one worker: the task→worker assignment is trivially
	// identical between the warm and fresh engines, so the comparison
	// stays bitwise. (At higher worker counts the static assignment is
	// derived from the binning at construction time, which differs
	// between the two engines and permutes the reduction order.)
	run("par", func(s *gonamd.State) clusterEngine {
		e, err := gonamd.NewParallel(sys, ff, s, 1, gonamd.WithClusterLists(4, 4), gonamd.WithRebalanceEvery(0))
		if err != nil {
			t.Fatal(err)
		}
		return e
	})
}

// TestClusterMixedPrecisionReproducible: mixed-precision trajectories
// must be bitwise reproducible run-to-run for a fixed configuration —
// the within-mode half of the precision contract — on both engines and
// across worker counts.
func TestClusterMixedPrecisionReproducible(t *testing.T) {
	sys, st, ff := diffSystem(t)
	const steps, dt = 10, 0.5

	run := func(workers int) *gonamd.State {
		s := st.Clone()
		var eng gonamd.Engine
		var err error
		if workers == 0 {
			eng, err = gonamd.NewSequential(sys, ff, s,
				gonamd.WithClusterLists(4, 4), gonamd.WithMixedPrecision())
		} else {
			eng, err = gonamd.NewParallel(sys, ff, s, workers,
				gonamd.WithClusterLists(4, 4), gonamd.WithMixedPrecision())
		}
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < steps; i++ {
			eng.Step(dt)
		}
		return s
	}

	for _, workers := range []int{0, 1, 4} {
		a, b := run(workers), run(workers)
		if !reflect.DeepEqual(a.Pos, b.Pos) || !reflect.DeepEqual(a.Vel, b.Vel) {
			t.Errorf("workers=%d: mixed-precision trajectory not bitwise reproducible", workers)
		}
	}

	// And mixed precision must still track the float64 trajectory
	// closely over a short run (the cross-mode half of the contract:
	// close, but not bitwise).
	f64 := func() *gonamd.State {
		s := st.Clone()
		eng, err := gonamd.NewSequential(sys, ff, s, gonamd.WithClusterLists(4, 4))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < steps; i++ {
			eng.Step(dt)
		}
		return s
	}()
	mixed := run(0)
	worst := 0.0
	for i := range mixed.Pos {
		if d := mixed.Pos[i].Sub(f64.Pos[i]).Norm(); d > worst {
			worst = d
		}
	}
	if worst > 1e-3 {
		t.Errorf("mixed-precision trajectory drifted %v Å from float64 in %d steps", worst, steps)
	}
}
