package gonamd_test

import (
	"math"
	"reflect"
	"testing"

	"gonamd"
)

// diffSystem builds a moderately sized water box once for the
// differential tests.
func diffSystem(t *testing.T) (*gonamd.System, *gonamd.State, *gonamd.ForceField) {
	t.Helper()
	sys, st, err := gonamd.BuildSystem(gonamd.WaterBoxSpec(16, 42))
	if err != nil {
		t.Fatal(err)
	}
	return sys, st, gonamd.StandardForceField(7.0)
}

// TestDifferentialForcesAcrossEngines: every engine configuration —
// sequential direct, sequential with a Verlet pairlist, and the
// parallel engine at 1/2/4/8 workers — must agree on forces and
// energies for the same configuration within floating-point reduction
// tolerance.
func TestDifferentialForcesAcrossEngines(t *testing.T) {
	sys, st, ff := diffSystem(t)

	ref, err := gonamd.NewSequential(sys, ff, st.Clone())
	if err != nil {
		t.Fatal(err)
	}
	refEn := ref.ComputeForces()
	refF := ref.Forces()

	check := func(name string, en gonamd.Energies, forces []gonamd.V3) {
		t.Helper()
		if math.Abs(en.Potential()-refEn.Potential()) > 1e-7*(1+math.Abs(refEn.Potential())) {
			t.Errorf("%s: potential %v, sequential direct %v", name, en.Potential(), refEn.Potential())
		}
		for i, f := range forces {
			d := f.Sub(refF[i]).Norm()
			if d > 1e-7*(1+refF[i].Norm()) {
				t.Fatalf("%s: force on atom %d off by %v (%v vs %v)", name, i, d, f, refF[i])
			}
		}
	}

	for _, skin := range []float64{1.0, 1.5} {
		listed, err := gonamd.NewSequential(sys, ff, st.Clone(), gonamd.WithPairlist(skin))
		if err != nil {
			t.Fatal(err)
		}
		check("seq+pairlist", listed.ComputeForces(), listed.Forces())
	}

	for _, workers := range []int{1, 2, 4, 8} {
		par, err := gonamd.NewParallel(sys, ff, st.Clone(), workers)
		if err != nil {
			t.Fatal(err)
		}
		check("parallel", par.ComputeForces(), par.Forces())

		blocked, err := gonamd.NewParallel(sys, ff, st.Clone(), workers, gonamd.WithBlockLists(1.5))
		if err != nil {
			t.Fatal(err)
		}
		check("parallel+blocklists", blocked.ComputeForces(), blocked.Forces())
	}
}

// TestDifferentialTrajectories: short dynamics must stay consistent
// between the sequential engine (with and without pairlist) and the
// parallel engine at several worker counts.
func TestDifferentialTrajectories(t *testing.T) {
	sys, st, ff := diffSystem(t)
	const steps, dt = 10, 0.5

	// Engines advance the State they are built on in place, so keep a
	// handle on each clone.
	refSt := st.Clone()
	ref, err := gonamd.NewSequential(sys, ff, refSt)
	if err != nil {
		t.Fatal(err)
	}
	ref.Run(steps, dt)
	refPos := refSt.Pos

	compare := func(name string, pos []gonamd.V3, tol float64) {
		t.Helper()
		worst := 0.0
		for i := range pos {
			if d := pos[i].Sub(refPos[i]).Norm(); d > worst {
				worst = d
			}
		}
		if worst > tol {
			t.Errorf("%s drifted %v Å from the sequential trajectory (tol %v)", name, worst, tol)
		}
	}

	listedSt := st.Clone()
	listed, err := gonamd.NewSequential(sys, ff, listedSt, gonamd.WithPairlist(1.5))
	if err != nil {
		t.Fatal(err)
	}
	listed.Run(steps, dt)
	compare("seq+pairlist", listedSt.Pos, 1e-6)

	for _, workers := range []int{1, 2, 4, 8} {
		parSt := st.Clone()
		par, err := gonamd.NewParallel(sys, ff, parSt, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < steps; i++ {
			par.Step(dt)
		}
		compare("parallel", parSt.Pos, 1e-6)

		blockedSt := st.Clone()
		blocked, err := gonamd.NewParallel(sys, ff, blockedSt, workers, gonamd.WithBlockLists(1.5))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < steps; i++ {
			blocked.Step(dt)
		}
		compare("parallel+blocklists", blockedSt.Pos, 1e-6)
	}
}

// TestParallelBitwiseDeterminism: the parallel engine must be exactly
// reproducible — two runs with the same worker count produce bitwise
// identical positions and velocities, for every worker count.
func TestParallelBitwiseDeterminism(t *testing.T) {
	sys, st, ff := diffSystem(t)
	const steps, dt = 10, 0.5
	for _, workers := range []int{1, 2, 4, 8} {
		run := func(blockLists bool) *gonamd.State {
			parSt := st.Clone()
			var opts []gonamd.Option
			if blockLists {
				opts = append(opts, gonamd.WithBlockLists(1.5))
			}
			par, err := gonamd.NewParallel(sys, ff, parSt, workers, opts...)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < steps; i++ {
				par.Step(dt)
			}
			return parSt
		}
		for _, blockLists := range []bool{false, true} {
			a, b := run(blockLists), run(blockLists)
			if !reflect.DeepEqual(a.Pos, b.Pos) {
				t.Errorf("%d workers (blockLists=%v): positions not bitwise reproducible", workers, blockLists)
			}
			if !reflect.DeepEqual(a.Vel, b.Vel) {
				t.Errorf("%d workers (blockLists=%v): velocities not bitwise reproducible", workers, blockLists)
			}
		}
	}
}
