package gonamd_test

import (
	"fmt"

	"gonamd"
)

// ExampleBuildSystem builds a small water box and reports its
// composition.
func ExampleBuildSystem() {
	sys, st, err := gonamd.BuildSystem(gonamd.WaterBoxSpec(15, 1))
	if err != nil {
		panic(err)
	}
	fmt.Printf("atoms: %d\n", sys.N())
	fmt.Printf("bonds: %d\n", len(sys.Bonds))
	fmt.Printf("positions: %d\n", len(st.Pos))
	// Output:
	// atoms: 336
	// bonds: 224
	// positions: 336
}

// ExampleNewSequential minimizes a water box and runs a few steps of NVE
// dynamics, checking that energy is finite and bounded.
func ExampleNewSequential() {
	sys, st, _ := gonamd.BuildSystem(gonamd.WaterBoxSpec(14, 2))
	ff := gonamd.StandardForceField(6.0)
	eng, _ := gonamd.NewSequential(sys, ff, st)
	before := eng.Energies().Potential()
	after := eng.Minimize(100, 0.2)
	fmt.Printf("minimization reduced energy: %v\n", after < before)
	eng.Run(10, 0.5)
	fmt.Printf("temperature positive: %v\n", eng.Temperature() > 0)
	// Output:
	// minimization reduced energy: true
	// temperature positive: true
}

// ExampleNewClusterSim runs the paper's bR benchmark on 16 simulated
// ASCI-Red processors and reports the parallel efficiency band.
func ExampleNewClusterSim() {
	spec := gonamd.BRSpec()
	spec.Temperature = 0
	sys, st, _ := gonamd.BuildSystem(spec)
	grid, _ := gonamd.NewGridDims(sys, spec.PatchDims, gonamd.Cutoff)
	w, _ := gonamd.BuildWorkload(spec.Name, sys, st, grid, gonamd.Cutoff, gonamd.Cutoff+1.5)

	sim, _ := gonamd.NewClusterSim(w, gonamd.ClusterConfig{
		PEs:          16,
		Model:        gonamd.ASCIRed(),
		SplitSelf:    true,
		GrainSplit:   true,
		SplitBonded:  true,
		MulticastOpt: true,
	})
	res := sim.Run()
	eff := res.SeqTime / res.AvgStep / 16
	fmt.Printf("16-PE efficiency above 80%%: %v\n", eff > 0.8)
	fmt.Printf("patches: %d\n", grid.NumPatches())
	// Output:
	// 16-PE efficiency above 80%: true
	// patches: 36
}
